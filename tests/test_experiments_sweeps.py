"""Parallel sweep driver tests."""

import numpy as np
import pytest

from repro.experiments import (
    convergence_sweep,
    rect_points,
    square_points,
    sweep_rounds,
)


def test_point_helpers():
    assert square_points("mesh", [3, 5]) == [("mesh", 3, 3), ("mesh", 5, 5)]
    assert rect_points("cordalis", [3], [4, 5]) == [
        ("cordalis", 3, 4),
        ("cordalis", 3, 5),
    ]


def test_sweep_inline_records():
    records = sweep_rounds(square_points("mesh", [4, 6]), processes=0)
    assert records.shape == (2,)
    assert records["is_dynamo"].all()
    assert records["monotone"].all()
    assert list(records["m"]) == [4, 6]
    assert np.array_equal(records["seed_size"], records["lower_bound"])
    # empirical predictions agree with the measurement where defined
    defined = records["empirical_rounds"] >= 0
    assert np.array_equal(
        records["rounds"][defined], records["empirical_rounds"][defined]
    )


def test_sweep_parallel_matches_inline():
    points = square_points("cordalis", [3, 4, 5]) + square_points(
        "serpentinus", [4, 5]
    )
    inline = sweep_rounds(points, processes=0)
    parallel = sweep_rounds(points, processes=2)
    assert np.array_equal(inline, parallel)


def test_convergence_sweep_records():
    recs = convergence_sweep(
        square_points("mesh", [4]), replicas=32, batch_size=8, shard_size=8
    )
    (r,) = recs
    assert r["replicas"] == 32
    assert 0.0 <= r["converged_frac"] <= 1.0
    assert r["monochromatic_frac"] <= r["converged_frac"]
    assert r["rule"] == "smp"


def test_convergence_sweep_validates_early():
    with pytest.raises(ValueError):
        convergence_sweep(square_points("mesh", [4]), replicas=0)
    with pytest.raises(ValueError):
        convergence_sweep(square_points("mesh", [4]), "no-such-rule", replicas=4)
    with pytest.raises(ValueError, match="processes"):
        convergence_sweep(square_points("mesh", [4]), replicas=4, processes=-3)


def test_sweep_mixed_kinds():
    records = sweep_rounds(
        [("mesh", 5, 5), ("cordalis", 5, 5), ("serpentinus", 5, 5)], processes=0
    )
    assert list(records["kind"]) == ["mesh", "cordalis", "serpentinus"]
    assert list(records["lower_bound"]) == [8, 6, 6]
    assert list(records["rounds"]) == [4, 8, 8]
