"""Topology tests: the three torus variants of Section II-A."""

import numpy as np
import pytest

from repro.topology import (
    ToroidalMesh,
    TorusCordalis,
    TorusSerpentinus,
    make_torus,
)

from helpers import TORUS_KINDS


# ----------------------------------------------------------------------
# Structural invariants (all kinds)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m,n", [(3, 3), (3, 7), (5, 4), (6, 6), (8, 5)])
def test_validate_passes(torus_kind, m, n):
    TORUS_KINDS[torus_kind](m, n).validate()


@pytest.mark.parametrize("m,n", [(2, 5), (5, 2), (2, 2), (2, 3)])
def test_two_wide_tori_allow_duplicate_neighbors(torus_kind, m, n):
    topo = TORUS_KINDS[torus_kind](m, n)
    assert topo.allows_duplicate_neighbors
    topo.validate()  # must not raise on the multi-edges


def test_four_regular(torus_kind):
    topo = TORUS_KINDS[torus_kind](5, 6)
    assert topo.is_regular
    assert topo.max_degree == 4
    assert np.all(topo.degrees == 4)


def test_neighbor_table_dtype_and_layout(torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 5)
    assert topo.neighbors.dtype == np.int32
    assert topo.neighbors.flags["C_CONTIGUOUS"]
    assert topo.neighbors.shape == (20, 4)


def test_edge_count(torus_kind):
    # 4-regular on m*n vertices -> exactly 2*m*n undirected edges
    topo = TORUS_KINDS[torus_kind](5, 7)
    assert topo.num_edges() == 2 * 5 * 7
    assert len(list(topo.edges())) == 2 * 5 * 7


def test_networkx_export_matches(torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 4)
    g = topo.to_networkx()
    assert g.number_of_nodes() == 16
    assert set(g.edges()) == set(topo.edges())


@pytest.mark.parametrize("m,n", [(1, 5), (5, 1), (0, 3), (-2, 4)])
def test_rejects_degenerate_dimensions(torus_kind, m, n):
    with pytest.raises(ValueError):
        TORUS_KINDS[torus_kind](m, n)


def test_coordinate_roundtrip(torus_kind):
    topo = TORUS_KINDS[torus_kind](6, 7)
    for v in range(topo.num_vertices):
        i, j = topo.vertex_coords(v)
        assert topo.vertex_index(i, j) == v
    assert topo.vertex_index(-1, -1) == topo.vertex_index(5, 6)
    with pytest.raises(ValueError):
        topo.vertex_coords(topo.num_vertices)


def test_grid_helpers_roundtrip(torus_kind):
    topo = TORUS_KINDS[torus_kind](3, 4)
    v = np.arange(12)
    assert np.array_equal(topo.from_grid(topo.to_grid(v)), v)
    with pytest.raises(ValueError):
        topo.to_grid(np.arange(11))
    with pytest.raises(ValueError):
        topo.from_grid(np.zeros((4, 3)))


def test_make_torus_dispatch():
    assert isinstance(make_torus("mesh", 3, 3), ToroidalMesh)
    assert isinstance(make_torus("TORUS_CORDALIS", 3, 3), TorusCordalis)
    assert isinstance(make_torus("serpentinus", 3, 3), TorusSerpentinus)
    with pytest.raises(ValueError):
        make_torus("klein_bottle", 3, 3)


# ----------------------------------------------------------------------
# Exact neighbor semantics (the wrap rules that differentiate the tori)
# ----------------------------------------------------------------------
def _neighbors_of(topo, i, j):
    v = topo.vertex_index(i, j)
    return {tuple(topo.vertex_coords(int(w))) for w in topo.neighbors[v]}


def test_mesh_interior_and_wrap_neighbors():
    t = ToroidalMesh(5, 6)
    assert _neighbors_of(t, 2, 3) == {(1, 3), (3, 3), (2, 2), (2, 4)}
    # row wraps onto itself
    assert _neighbors_of(t, 2, 5) == {(1, 5), (3, 5), (2, 4), (2, 0)}
    # column wraps onto itself
    assert _neighbors_of(t, 4, 3) == {(3, 3), (0, 3), (4, 2), (4, 4)}
    assert _neighbors_of(t, 0, 0) == {(4, 0), (1, 0), (0, 5), (0, 1)}


def test_cordalis_row_chain_neighbors():
    t = TorusCordalis(5, 6)
    # interior identical to the mesh
    assert _neighbors_of(t, 2, 3) == {(1, 3), (3, 3), (2, 2), (2, 4)}
    # last vertex of row i chains to first vertex of row i+1
    assert _neighbors_of(t, 2, 5) == {(1, 5), (3, 5), (2, 4), (3, 0)}
    assert _neighbors_of(t, 4, 5) == {(3, 5), (0, 5), (4, 4), (0, 0)}
    # columns wrap as in the mesh
    assert _neighbors_of(t, 4, 3) == {(3, 3), (0, 3), (4, 2), (4, 4)}


def test_cordalis_rows_form_single_hamiltonian_cycle():
    m, n = 4, 5
    t = TorusCordalis(m, n)
    # follow "right" (slot 3) from vertex 0: must visit all m*n vertices
    seen = [0]
    v = 0
    for _ in range(m * n - 1):
        v = int(t.neighbors[v, 3])
        seen.append(v)
    assert int(t.neighbors[v, 3]) == 0
    assert sorted(seen) == list(range(m * n))


def test_serpentinus_row_and_column_chains():
    t = TorusSerpentinus(5, 6)
    # rows chain like the cordalis
    assert _neighbors_of(t, 2, 5) == {(1, 5), (3, 5), (2, 4), (3, 0)}
    # last vertex of column j chains to first vertex of column j-1
    assert _neighbors_of(t, 4, 3) == {(3, 3), (0, 2), (4, 2), (4, 4)}
    # ...and of column 0 to column n-1
    assert (0, 5) in _neighbors_of(t, 4, 0)
    # up-neighbor of row 0 is the inverse map
    assert (4, 4) in _neighbors_of(t, 0, 3)


def test_serpentinus_columns_form_single_hamiltonian_cycle():
    m, n = 4, 5
    t = TorusSerpentinus(m, n)
    seen = [0]
    v = 0
    for _ in range(m * n - 1):
        v = int(t.neighbors[v, 1])  # "down" slot
        seen.append(v)
    assert int(t.neighbors[v, 1]) == 0
    assert sorted(seen) == list(range(m * n))


def test_tori_differ_exactly_at_the_chain_edges():
    m, n = 4, 5
    mesh, cord, serp = ToroidalMesh(m, n), TorusCordalis(m, n), TorusSerpentinus(m, n)
    # cordalis differs from mesh only in rows' first/last columns
    diff = np.flatnonzero((mesh.neighbors != cord.neighbors).any(axis=1))
    cols = {int(v % n) for v in diff}
    assert cols == {0, n - 1}
    # serpentinus differs from cordalis only in columns' first/last rows
    diff2 = np.flatnonzero((cord.neighbors != serp.neighbors).any(axis=1))
    rows = {int(v // n) for v in diff2}
    assert rows == {0, m - 1}


def test_index_grid_view():
    t = ToroidalMesh(3, 4)
    g = t.index_grid()
    assert g.shape == (3, 4)
    assert g[2, 3] == t.vertex_index(2, 3)
