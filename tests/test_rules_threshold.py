"""Linear-threshold rule tests (the TSS substrate)."""

import networkx as nx
import numpy as np
import pytest

from repro.rules import ACTIVE, INACTIVE, LinearThresholdRule
from repro.topology import GraphTopology, ToroidalMesh


def test_threshold_specs_resolve():
    topo = ToroidalMesh(3, 3)
    assert np.all(LinearThresholdRule("simple").thresholds_for(topo) == 2)
    assert np.all(LinearThresholdRule("strong").thresholds_for(topo) == 3)
    assert np.all(LinearThresholdRule("unanimous").thresholds_for(topo) == 4)


def test_unknown_spec_rejected():
    with pytest.raises(ValueError):
        LinearThresholdRule("plurality").thresholds_for(ToroidalMesh(3, 3))


def test_explicit_vector_validated():
    topo = ToroidalMesh(3, 3)
    ok = LinearThresholdRule(np.full(9, 2))
    assert np.all(ok.thresholds_for(topo) == 2)
    with pytest.raises(ValueError):
        LinearThresholdRule(np.full(8, 2)).thresholds_for(topo)
    with pytest.raises(ValueError):
        LinearThresholdRule(np.full(9, -1)).thresholds_for(topo)


def test_rejects_non_binary_states():
    topo = ToroidalMesh(3, 3)
    with pytest.raises(ValueError):
        LinearThresholdRule().step(np.full(9, 2, dtype=np.int32), topo)


def test_activation_is_irreversible():
    topo = ToroidalMesh(3, 3)
    state = np.full(9, ACTIVE, dtype=np.int32)
    state[4] = INACTIVE
    out = LinearThresholdRule("unanimous").step(state, topo)
    # active stays active even with zero active neighbors required... and
    # the inactive center with 4 active neighbors activates
    assert np.all(out == ACTIVE)


def test_simple_threshold_activates_at_two():
    topo = ToroidalMesh(3, 4)
    state = np.zeros(12, dtype=np.int32)
    v = topo.vertex_index(1, 1)
    up, down = topo.vertex_index(0, 1), topo.vertex_index(2, 1)
    state[[up, down]] = ACTIVE
    out = LinearThresholdRule("simple").step(state, topo)
    assert out[v] == ACTIVE
    # strong needs 3 -> stays inactive
    out2 = LinearThresholdRule("strong").step(state, topo)
    assert out2[v] == INACTIVE


def test_step_matches_reference_on_string_specs(rng):
    topo = ToroidalMesh(4, 4)
    rule = LinearThresholdRule("simple")
    for _ in range(5):
        state = rng.integers(0, 2, size=16).astype(np.int32)
        assert np.array_equal(
            rule.step(state, topo), rule.step_reference(state, topo)
        )


def test_scalar_oracle_rejects_explicit_vectors():
    rule = LinearThresholdRule(np.full(9, 2))
    with pytest.raises(ValueError):
        rule.update_vertex(0, [1, 1, 0, 0])


def test_irregular_graph_thresholds():
    topo = GraphTopology(nx.star_graph(4))  # hub degree 4, leaves degree 1
    state = np.array([0, 1, 1, 0, 0], dtype=np.int32)
    out = LinearThresholdRule("simple").step(state, topo)
    assert out[0] == ACTIVE  # hub: ceil(4/2)=2 active neighbors
    assert out[3] == INACTIVE and out[4] == INACTIVE  # leaves see inactive hub


def test_name_contains_spec():
    assert "simple" in LinearThresholdRule("simple").name()
    assert "custom" in LinearThresholdRule(np.array([1])).name()
