"""Construction tests: every builder yields a verified minimum monotone
dynamo with the right seed shape, size, and palette."""

import numpy as np
import pytest

from repro.core import (
    build_minimum_dynamo,
    full_cross_mesh_dynamo,
    proposition3_column_dynamo,
    theorem2_mesh_dynamo,
    theorem4_cordalis_dynamo,
    theorem6_serpentinus_dynamo,
    verify_construction,
)
from repro.topology import ToroidalMesh, TorusCordalis, TorusSerpentinus


# ----------------------------------------------------------------------
# Theorem 2 — mesh
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m,n", [(3, 3), (4, 6), (5, 5), (6, 4), (7, 9), (9, 9), (10, 7)])
def test_theorem2_is_minimum_monotone_dynamo(m, n):
    con = theorem2_mesh_dynamo(m, n)
    assert con.seed_size == m + n - 2 == con.size_lower_bound
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo
    assert rep.conditions.satisfied
    assert not rep.complement_has_non_k_block


def test_theorem2_seed_shape():
    con = theorem2_mesh_dynamo(6, 7, transpose=False)
    seed = con.topo.to_grid(con.seed)
    assert seed[:, 0].all()          # full column 0
    assert seed[0, : 6].all()        # row 0 except the gap
    assert not seed[0, 6]            # the gap (0, n-1)
    assert seed.sum() == 6 + 7 - 2


def test_theorem2_transpose_variants_both_work():
    for transpose in (False, True):
        con = theorem2_mesh_dynamo(7, 6, transpose=transpose)
        rep = verify_construction(con)
        assert rep.is_monotone_dynamo, transpose


def test_theorem2_palette_four_iff_dimension_divisible_by_three():
    # |C| = 4 exactly matches the paper's Theorem-2 statement when a
    # striped dimension is divisible by 3; otherwise stripes need 5.
    assert theorem2_mesh_dynamo(9, 9).num_colors == 4
    assert theorem2_mesh_dynamo(6, 5).num_colors == 4
    assert theorem2_mesh_dynamo(5, 6).num_colors == 4   # transposes
    assert theorem2_mesh_dynamo(5, 5).num_colors == 6   # m = n = 5 worst case
    assert theorem2_mesh_dynamo(4, 4).num_colors == 5


def test_theorem2_custom_target_color():
    con = theorem2_mesh_dynamo(6, 6, k=3)
    assert con.k == 3
    assert 3 not in set(con.palette[1:])
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo


def test_theorem2_rejects_tiny():
    with pytest.raises(ValueError):
        theorem2_mesh_dynamo(2, 5)


def test_full_cross_one_above_minimum():
    con = full_cross_mesh_dynamo(5, 5)
    assert con.seed_size == 5 + 5 - 1
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo
    assert rep.seed_is_union_of_blocks  # the cross IS a union of k-blocks


def test_theorem2_seed_not_union_of_blocks_reproduction_finding():
    """Reproduction finding: the paper's own Theorem-2 seed contradicts
    Lemma 2 — vertex (0, n-2) has a single k-colored neighbor, so the seed
    is not a union of k-blocks, yet the dynamo is monotone (the vertex is
    protected by the rainbow condition instead)."""
    con = theorem2_mesh_dynamo(9, 9, transpose=False)
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo
    assert not rep.seed_is_union_of_blocks


# ----------------------------------------------------------------------
# Theorem 4 — cordalis
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m,n", [(3, 3), (4, 6), (5, 5), (6, 9), (8, 4), (7, 7)])
def test_theorem4_is_minimum_monotone_dynamo(m, n):
    con = theorem4_cordalis_dynamo(m, n)
    assert con.seed_size == n + 1 == con.size_lower_bound
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo
    assert rep.conditions.satisfied
    assert rep.seed_is_union_of_blocks  # row + (1,0) is a k-block here


def test_theorem4_seed_shape():
    con = theorem4_cordalis_dynamo(5, 6)
    seed = con.topo.to_grid(con.seed)
    assert seed[0, :].all()
    assert seed[1, 0]
    assert seed.sum() == 7


def test_theorem4_palette_law():
    assert theorem4_cordalis_dynamo(5, 6).num_colors == 4   # n % 3 == 0
    assert theorem4_cordalis_dynamo(5, 7).num_colors == 5
    assert theorem4_cordalis_dynamo(5, 5).num_colors == 6   # n = 5


# ----------------------------------------------------------------------
# Theorem 6 — serpentinus
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m,n", [(5, 5), (7, 4), (9, 6), (4, 4), (3, 3)])
def test_theorem6_row_variant(m, n):
    con = theorem6_serpentinus_dynamo(m, n)
    assert "row" in con.name
    assert con.seed_size == min(m, n) + 1 == con.size_lower_bound
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo
    assert rep.conditions.satisfied


@pytest.mark.parametrize("m,n", [(4, 7), (3, 8), (6, 9), (5, 11)])
def test_theorem6_column_variant(m, n):
    con = theorem6_serpentinus_dynamo(m, n)
    assert "column" in con.name
    assert con.seed_size == m + 1 == con.size_lower_bound
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo
    assert rep.conditions.satisfied
    assert con.predicted_rounds is None  # paper states no formula here


def test_theorem6_column_seed_shape():
    con = theorem6_serpentinus_dynamo(4, 7)
    seed = con.topo.to_grid(con.seed)
    assert seed[:, 0].all()
    assert seed[0, 1]
    assert seed.sum() == 5


# ----------------------------------------------------------------------
# Proposition 3 — narrow tori
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m", [3, 4, 5, 6, 9, 12])
def test_proposition3_column_dynamo(m):
    con = proposition3_column_dynamo(m)
    assert con.seed_size == m
    assert con.num_colors == 3  # "more than two colors" suffice at N = 2
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo


def test_proposition3_rejects_tiny():
    with pytest.raises(ValueError):
        proposition3_column_dynamo(2)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def test_build_minimum_dynamo_dispatch():
    assert isinstance(build_minimum_dynamo("mesh", 5, 5).topo, ToroidalMesh)
    assert isinstance(build_minimum_dynamo("cordalis", 5, 5).topo, TorusCordalis)
    assert isinstance(
        build_minimum_dynamo("serpentinus", 5, 5).topo, TorusSerpentinus
    )
    with pytest.raises(ValueError):
        build_minimum_dynamo("hypercube", 5, 5)


@pytest.mark.parametrize("m,n", [(5, 2), (2, 5)])
def test_build_minimum_dynamo_two_wide_mesh(m, n):
    con = build_minimum_dynamo("mesh", m, n)
    assert con.seed_size == m + n - 2
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo


def test_construction_grid_view():
    con = theorem2_mesh_dynamo(4, 5)
    g = con.grid()
    assert g.shape == (4, 5)
    assert np.array_equal(g.reshape(-1), con.colors)


def test_seeds_are_k_colored():
    for kind in ("mesh", "cordalis", "serpentinus"):
        con = build_minimum_dynamo(kind, 6, 6)
        assert np.all(con.colors[con.seed] == con.k)
        assert np.all(con.colors[~con.seed] != con.k)
