"""Bounded-confidence (Deffuant) comparison-model tests."""

import numpy as np
import pytest

from repro.ext import compare_with_smp, opinion_clusters, run_deffuant
from repro.topology import ToroidalMesh


def test_parameter_validation():
    topo = ToroidalMesh(3, 3)
    with pytest.raises(ValueError):
        run_deffuant(topo, epsilon=0.0)
    with pytest.raises(ValueError):
        run_deffuant(topo, epsilon=0.3, mu=0.9)
    with pytest.raises(ValueError):
        run_deffuant(topo, 0.3, initial=np.zeros(5))


def test_opinion_clusters_gap_splitting():
    xs = np.array([0.1, 0.11, 0.12, 0.8, 0.82])
    cents = opinion_clusters(xs, epsilon=0.2)
    assert len(cents) == 2
    assert cents[0] == pytest.approx(0.11)
    assert cents[1] == pytest.approx(0.81)
    assert opinion_clusters(np.array([]), 0.2) == []


def test_large_epsilon_single_cluster(rng):
    topo = ToroidalMesh(5, 5)
    res = run_deffuant(topo, epsilon=1.0, rng=rng, max_steps=100_000)
    assert res.converged
    assert len(res.clusters) == 1
    # mean opinion is conserved by the symmetric update
    assert res.opinions.mean() == pytest.approx(0.5, abs=0.15)


def test_small_epsilon_multiple_clusters(rng):
    topo = ToroidalMesh(6, 6)
    res = run_deffuant(topo, epsilon=0.12, rng=rng, max_steps=150_000)
    assert len(res.clusters) >= 2


def test_opinions_stay_in_unit_interval(rng):
    topo = ToroidalMesh(4, 4)
    res = run_deffuant(topo, epsilon=0.4, rng=rng, max_steps=20_000)
    assert np.all(res.opinions >= 0.0) and np.all(res.opinions <= 1.0)


def test_mean_conservation_exact(rng):
    topo = ToroidalMesh(4, 4)
    x0 = rng.random(16)
    res = run_deffuant(topo, 0.5, rng=rng, initial=x0, max_steps=5_000)
    assert res.opinions.mean() == pytest.approx(x0.mean(), abs=1e-9)


def test_compare_with_smp_contract(rng):
    topo = ToroidalMesh(5, 5)
    out = compare_with_smp(topo, epsilon=0.3, num_colors=4, rng=rng)
    assert set(out) >= {
        "deffuant_clusters",
        "smp_surviving_colors",
        "smp_converged",
        "num_colors",
    }
    assert out["deffuant_clusters"] >= 1
    assert 1 <= out["smp_surviving_colors"] <= 4
