"""Forest + rainbow condition tests (the Theorem 2/4/6 hypotheses)."""

import numpy as np

from repro.structures import (
    check_theorem_conditions,
    color_class_is_forest,
    induced_subgraph_is_forest,
    rainbow_violations,
)
from repro.topology import ToroidalMesh, TorusCordalis

from helpers import TORUS_KINDS

K = 1


def test_empty_set_is_forest(torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 4)
    assert induced_subgraph_is_forest(topo, np.zeros(16, dtype=bool))


def test_path_is_forest():
    topo = ToroidalMesh(5, 5)
    member = np.zeros(25, dtype=bool)
    member.reshape(5, 5)[2, 1:4] = True
    assert induced_subgraph_is_forest(topo, member)


def test_full_row_is_cycle_in_mesh_but_path_in_cordalis():
    member = np.zeros(25, dtype=bool)
    member.reshape(5, 5)[2, :] = True
    assert not induced_subgraph_is_forest(ToroidalMesh(5, 5), member)
    # in the cordalis the row chains into the next row -> induced path
    assert induced_subgraph_is_forest(TorusCordalis(5, 5), member)


def test_square_is_not_forest(torus_kind):
    topo = TORUS_KINDS[torus_kind](5, 5)
    member = np.zeros(25, dtype=bool)
    member.reshape(5, 5)[1:3, 1:3] = True
    assert not induced_subgraph_is_forest(topo, member)


def test_color_class_is_forest_wrapper():
    topo = ToroidalMesh(5, 5)
    colors = np.zeros(25, dtype=np.int32)
    colors.reshape(5, 5)[1, 1:4] = 7
    assert color_class_is_forest(topo, colors, 7)
    assert not color_class_is_forest(topo, colors, 0)  # the huge rest has cycles


def test_rainbow_violation_detected():
    topo = ToroidalMesh(5, 5)
    colors = np.zeros(25, dtype=np.int32)
    g = colors.reshape(5, 5)
    # vertex (2,2) has color 5; two neighbors share color 3 (neither k=1 nor 5)
    g[2, 2] = 5
    g[1, 2] = 3
    g[3, 2] = 3
    g[2, 1] = 2
    g[2, 3] = 4
    violations = rainbow_violations(topo, colors, k=K)
    assert (topo.vertex_index(2, 2), 3) in violations


def test_rainbow_ignores_own_and_target_colors():
    topo = ToroidalMesh(5, 5)
    colors = np.zeros(25, dtype=np.int32)
    g = colors.reshape(5, 5)
    g[2, 2] = 5
    g[1, 2] = 5  # own color — exempt
    g[3, 2] = K  # target — exempt
    g[2, 1] = K
    g[2, 3] = 2
    assert (topo.vertex_index(2, 2), 5) not in rainbow_violations(topo, colors, K)


def test_constructions_satisfy_conditions(torus_kind):
    from repro.core import build_minimum_dynamo

    con = build_minimum_dynamo(torus_kind, 6, 6)
    report = check_theorem_conditions(con.topo, con.colors, con.k)
    assert report.satisfied
    assert bool(report) is True
    assert report.non_forest_colors == []
    assert report.rainbow_failures == []


def test_condition_report_flags_failures():
    topo = ToroidalMesh(5, 5)
    colors = np.full(25, 2, dtype=np.int32)  # one giant color class: cycles
    colors.reshape(5, 5)[0, :] = K
    report = check_theorem_conditions(topo, colors, K)
    assert not report.satisfied
    assert 2 in report.non_forest_colors
