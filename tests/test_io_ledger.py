"""Run-ledger unit tests (repro.io.ledger + repro.io.jsonl).

The contract under test: run identity is a pure function of the
experiment definition, shard commits are durable and idempotent, a torn
final line is a healed crash artifact (never corruption), and resume
refuses to lie — conflicting records, stale dynamics versions, and
newer-schema files all fail loudly instead of replaying wrong bits.
"""

import json

import numpy as np
import pytest

from faults import tear_tail
from repro.io.jsonl import JsonlStore, canonical_json
from repro.io.ledger import (
    LEDGER_SCHEMA,
    LedgerError,
    LedgerScope,
    RunLedger,
    StaleRunError,
    decode_payload,
    encode_payload,
    open_ledger,
    run_id,
)


def make_def(**overrides):
    base = {
        "experiment": "unit-test",
        "dynamics": "test-dynamics-1",
        "seed": 7,
        "sizes": [3, 4],
    }
    base.update(overrides)
    return base


# ----------------------------------------------------------------------
# run identity
# ----------------------------------------------------------------------
def test_run_id_is_deterministic_and_order_insensitive():
    a = {"dynamics": "d1", "seed": 1, "sizes": [3]}
    b = {"sizes": [3], "dynamics": "d1", "seed": 1}
    assert run_id(a) == run_id(b)
    assert len(run_id(a)) == 16


def test_run_id_sensitive_to_every_field():
    base = make_def()
    assert run_id(base) != run_id(make_def(seed=8))
    assert run_id(base) != run_id(make_def(sizes=[3, 5]))
    assert run_id(base) != run_id(make_def(dynamics="test-dynamics-2"))
    assert run_id(base) != run_id(make_def(extra=None))


def test_run_id_canonicalizes_tuples_to_lists():
    assert run_id(make_def(sizes=(3, 4))) == run_id(make_def(sizes=[3, 4]))


# ----------------------------------------------------------------------
# payload codec
# ----------------------------------------------------------------------
def test_codec_roundtrips_numpy_arrays_bitwise():
    arr = np.array([[1, 2], [3, 4]], dtype=np.int32)
    out = decode_payload(json.loads(canonical_json(encode_payload(arr))))
    assert isinstance(out, np.ndarray)
    assert out.dtype == np.int32
    assert out.shape == (2, 2)
    assert np.array_equal(out, arr)


def test_codec_roundtrips_float64_bitwise():
    vals = np.array([0.1, 1 / 3, 1e-300, np.pi], dtype=np.float64)
    out = decode_payload(json.loads(canonical_json(encode_payload(vals))))
    assert out.tobytes() == vals.tobytes()


def test_codec_roundtrips_tuples_and_nesting():
    payload = {"witnesses": [(np.array([1, 2], dtype=np.int32), True)],
               "count": np.int64(3), "frac": np.float64(0.5),
               "flag": np.bool_(True), "none": None}
    out = decode_payload(json.loads(canonical_json(encode_payload(payload))))
    assert isinstance(out["witnesses"][0], tuple)
    cfg, mono = out["witnesses"][0]
    assert cfg.dtype == np.int32 and mono is True
    assert out["count"] == 3 and isinstance(out["count"], int)
    assert out["flag"] is True and out["none"] is None


def test_codec_rejects_non_string_keys_and_unknown_types():
    with pytest.raises(LedgerError, match="keys must be str"):
        encode_payload({1: "x"})
    with pytest.raises(LedgerError, match="unsupported"):
        encode_payload(object())


# ----------------------------------------------------------------------
# begin / record / replay
# ----------------------------------------------------------------------
def test_begin_record_replay_roundtrip(tmp_path):
    path = tmp_path / "led.jsonl"
    led = RunLedger(path)
    rid = led.begin(make_def())
    assert led.record_shard(rid, ["size", 3], {"result": (1, 2)}) is True
    assert led.record_shard(rid, ["size", 4],
                            np.array([5, 6], dtype=np.int64)) is True
    led.finish(rid)

    fresh = RunLedger(path)
    assert fresh.runs == [rid]
    assert fresh.definition(rid) == led.definition(rid)
    assert fresh.finished(rid) and fresh.shard_count(rid) == 2
    assert fresh.has_shard(rid, ["size", 3])
    assert fresh.get_shard(rid, ["size", 3]) == {"result": (1, 2)}
    replayed = fresh.get_shard(rid, ["size", 4])
    assert replayed.dtype == np.int64 and np.array_equal(replayed, [5, 6])


def test_begin_requires_dynamics_pin(tmp_path):
    led = RunLedger(tmp_path / "led.jsonl")
    with pytest.raises(LedgerError, match="dynamics"):
        led.begin({"experiment": "x", "seed": 1})


def test_begin_existing_run_without_resume_raises(tmp_path):
    path = tmp_path / "led.jsonl"
    RunLedger(path).begin(make_def())
    led = RunLedger(path)
    with pytest.raises(LedgerError, match="--resume"):
        led.begin(make_def())
    assert led.begin(make_def(), resume=True) == run_id(make_def())


def test_resume_with_stale_dynamics_refused(tmp_path):
    path = tmp_path / "led.jsonl"
    RunLedger(path).begin(make_def(dynamics="old-engine"))
    led = RunLedger(path)
    with pytest.raises(StaleRunError, match="old-engine"):
        led.begin(make_def(dynamics="new-engine"), resume=True)
    # a definition differing in more than dynamics is just a new run
    other = led.begin(make_def(dynamics="new-engine", seed=99), resume=True)
    assert other in led.runs


def test_duplicate_identical_record_is_idempotent(tmp_path):
    path = tmp_path / "led.jsonl"
    led = RunLedger(path)
    rid = led.begin(make_def())
    assert led.record_shard(rid, ["s", 0], {"v": 1}) is True
    before = path.read_bytes()
    assert led.record_shard(rid, ["s", 0], {"v": 1}) is False
    assert path.read_bytes() == before  # no second append


def test_conflicting_record_raises(tmp_path):
    led = RunLedger(tmp_path / "led.jsonl")
    rid = led.begin(make_def())
    led.record_shard(rid, ["s", 0], {"v": 1})
    with pytest.raises(LedgerError, match="different payload"):
        led.record_shard(rid, ["s", 0], {"v": 2})


def test_record_and_finish_require_begun_run(tmp_path):
    led = RunLedger(tmp_path / "led.jsonl")
    with pytest.raises(LedgerError, match="begin"):
        led.record_shard("deadbeefdeadbeef", ["s", 0], {})
    with pytest.raises(LedgerError, match="begin"):
        led.finish("deadbeefdeadbeef")
    rid = led.begin(make_def())
    assert led.finish(rid) is True
    assert led.finish(rid) is False


def test_get_shard_raises_when_absent(tmp_path):
    led = RunLedger(tmp_path / "led.jsonl")
    rid = led.begin(make_def())
    assert not led.has_shard(rid, ["missing"])
    with pytest.raises(LedgerError, match="no shard"):
        led.get_shard(rid, ["missing"])


def test_open_ledger_coerces_paths(tmp_path):
    path = tmp_path / "led.jsonl"
    led = open_ledger(path)
    assert isinstance(led, RunLedger)
    assert open_ledger(led) is led


# ----------------------------------------------------------------------
# crash artifacts on disk
# ----------------------------------------------------------------------
def test_torn_tail_is_recoverable_not_corrupt(tmp_path):
    path = tmp_path / "led.jsonl"
    led = RunLedger(path)
    rid = led.begin(make_def())
    led.record_shard(rid, ["s", 0], {"v": 1})
    led.record_shard(rid, ["s", 1], {"v": 2})
    tear_tail(path, drop=7)

    torn = RunLedger(path)
    assert torn.torn_tail is not None
    assert torn.corrupt == []
    assert torn.shard_count(rid) == 1  # the torn record never committed
    assert torn.get_shard(rid, ["s", 0]) == {"v": 1}


def test_torn_tail_healed_by_next_append(tmp_path):
    path = tmp_path / "led.jsonl"
    led = RunLedger(path)
    rid = led.begin(make_def())
    led.record_shard(rid, ["s", 0], {"v": 1})
    tear_tail(path, drop=4)

    healed = RunLedger(path)
    healed.begin(make_def(), resume=True)
    healed.record_shard(rid, ["s", 0], {"v": 1})  # re-commit the torn shard
    final = RunLedger(path)
    assert final.torn_tail is None and final.corrupt == []
    assert final.shard_count(rid) == 1
    # every remaining line is whole, parseable JSON
    for line in path.read_bytes().splitlines():
        json.loads(line)


def test_interior_corruption_is_collected_with_line_numbers(tmp_path):
    path = tmp_path / "led.jsonl"
    led = RunLedger(path)
    rid = led.begin(make_def())
    led.record_shard(rid, ["s", 0], {"v": 1})
    lines = path.read_bytes().splitlines(keepends=True)
    lines.insert(1, b"{this is not json\n")
    path.write_bytes(b"".join(lines))

    loaded = RunLedger(path)
    assert loaded.torn_tail is None
    assert [lineno for lineno, _ in loaded.corrupt] == [2]
    assert loaded.shard_count(rid) == 1  # good records still load


def test_strict_mode_raises_on_interior_corruption(tmp_path):
    path = tmp_path / "led.jsonl"
    led = RunLedger(path)
    led.begin(make_def())
    lines = path.read_bytes().splitlines(keepends=True)
    lines.insert(0, b"{broken\n")
    path.write_bytes(b"".join(lines))
    with pytest.raises(LedgerError, match=":1:"):
        RunLedger(path, strict=True)


def test_newer_schema_records_are_refused(tmp_path):
    path = tmp_path / "led.jsonl"
    led = RunLedger(path)
    rid = led.begin(make_def())
    record = {"type": "shard", "schema": LEDGER_SCHEMA + 1, "run_id": rid,
              "key": ["s", 0], "digest": "0" * 16, "payload": {}}
    with path.open("a") as fh:
        fh.write(canonical_json(record) + "\n")
    loaded = RunLedger(path)
    assert any("newer" in msg for _, msg in loaded.corrupt)
    assert loaded.shard_count(rid) == 0


def test_tampered_payload_digest_is_rejected(tmp_path):
    path = tmp_path / "led.jsonl"
    led = RunLedger(path)
    rid = led.begin(make_def())
    led.record_shard(rid, ["s", 0], {"v": 1})
    raw = path.read_text()
    assert '"v":1' in raw
    path.write_text(raw.replace('"v":1', '"v":9'))
    loaded = RunLedger(path)
    assert any("digest" in msg for _, msg in loaded.corrupt)
    assert loaded.shard_count(rid) == 0


def test_shard_record_before_its_run_is_corrupt(tmp_path):
    path = tmp_path / "led.jsonl"
    body = {"v": 1}
    from repro.io.ledger import _digest  # the module-internal digest

    record = {"type": "shard", "schema": LEDGER_SCHEMA,
              "run_id": "f" * 16, "key": ["s", 0],
              "digest": _digest(canonical_json(body)), "payload": body}
    path.write_text(canonical_json(record) + "\n")
    loaded = RunLedger(path)
    assert any("unknown run" in msg for _, msg in loaded.corrupt)


# ----------------------------------------------------------------------
# JsonlStore byte geometry
# ----------------------------------------------------------------------
def test_jsonl_missing_newline_is_completed_on_append(tmp_path):
    path = tmp_path / "x.jsonl"
    store = JsonlStore(path)
    store.append({"a": 1})
    # simulate a crash that lost only the trailing newline
    with path.open("r+b") as fh:
        fh.truncate(path.stat().st_size - 1)
    fresh = JsonlStore(path)
    assert [line.payload for line in fresh.read_all()] == [{"a": 1}]
    assert fresh.torn_tail is None
    fresh.append({"b": 2})
    assert [line.payload for line in JsonlStore(path).read_all()] == [
        {"a": 1}, {"b": 2}
    ]


def test_jsonl_append_after_torn_tail_truncates_exactly_once(tmp_path):
    path = tmp_path / "x.jsonl"
    store = JsonlStore(path)
    store.append({"a": 1})
    store.append({"bb": 22})
    tear_tail(path, drop=3)
    fresh = JsonlStore(path)
    assert [line.payload for line in fresh.read_all()] == [{"a": 1}]
    assert fresh.torn_tail is not None
    fresh.append({"c": 3})
    assert [line.payload for line in JsonlStore(path).read_all()] == [
        {"a": 1}, {"c": 3}
    ]


# ----------------------------------------------------------------------
# scopes and checkpoints
# ----------------------------------------------------------------------
def test_ledger_scope_threads_prefixes(tmp_path):
    led = RunLedger(tmp_path / "led.jsonl")
    rid = led.begin(make_def())
    root = LedgerScope(led, rid)
    cell = root.child("mesh", 3)
    size = cell.child("size", 2)
    assert size.key("outcome") == ["mesh", 3, "size", 2, "outcome"]
    size.put({"v": 1}, "outcome")
    assert size.get("outcome") == {"v": 1}
    assert size.has("outcome")
    assert cell.get("cell") is None  # absent is None, not an error
    assert led.has_shard(rid, ["mesh", 3, "size", 2, "outcome"])


def test_shard_checkpoint_lookup_store(tmp_path):
    led = RunLedger(tmp_path / "led.jsonl")
    rid = led.begin(make_def())
    scope = LedgerScope(led, rid, prefix=("cell",))
    ckpt = scope.checkpoint(3)
    assert len(ckpt) == 3
    assert ckpt.key_of(1) == ["cell", "shard", 1]
    assert ckpt.lookup(1) == (False, None)
    ckpt.store(1, (4, 5))
    found, value = ckpt.lookup(1)
    assert found and value == (4, 5)
    # explicit keys mirror the generated ones
    explicit = scope.checkpoint_for([("shard", i) for i in range(3)])
    assert explicit.lookup(1) == (True, (4, 5))
