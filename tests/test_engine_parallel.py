"""Cross-process sharding layer tests.

The contract under test (repro.engine.parallel): shard RNG streams are
derived from shard *coordinates*, partials reduce in shard order, so
``convergence_sweep`` / ``below_bound_census`` / ``random_dynamo_search``
are **bitwise-identical at any process count** — plus the shared
process-count validation every driver routes through.
"""

import numpy as np
import pytest

from repro.core import random_dynamo_search
from repro.engine.parallel import (
    kind_tag,
    resolve_processes,
    run_sharded,
    shard_counts,
    shard_seed,
    topology_spec,
    validate_processes,
)
from repro.experiments import below_bound_census, convergence_sweep, sweep_rounds
from repro.experiments.sweeps import square_points
from repro.topology import ToroidalMesh, TorusCordalis


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def test_validate_processes_accepts_valid_counts():
    assert validate_processes(None) is None
    assert validate_processes(0) == 0
    assert validate_processes(3) == 3


@pytest.mark.parametrize("bad", [-1, -2, 2.5, "four"])
def test_validate_processes_rejects_invalid(bad):
    with pytest.raises(ValueError, match="processes"):
        validate_processes(bad)


def test_sweep_rounds_rejects_negative_processes():
    """Regression: processes=-2 used to reach mp.Pool(-2) and die with an
    opaque ValueError; the shared validator now rejects it up front."""
    with pytest.raises(ValueError, match="processes must be >= 0"):
        sweep_rounds(square_points("mesh", [4, 5]), processes=-2)


def test_drivers_share_process_validation():
    points = square_points("mesh", [4])
    with pytest.raises(ValueError, match="processes"):
        convergence_sweep(points, replicas=4, processes=-1)
    with pytest.raises(ValueError, match="processes"):
        below_bound_census(kinds=["mesh"], sizes=[4], processes=-1)
    with pytest.raises(ValueError, match="processes"):
        random_dynamo_search(ToroidalMesh(3, 3), 3, 3, 10, 7, processes=-1)


def test_resolve_processes_caps_at_units():
    import multiprocessing as mp

    assert resolve_processes(8, 3) == 3
    assert resolve_processes(0, 3) == 0
    assert resolve_processes(None, 2) == min(mp.cpu_count(), 2)


def test_shard_counts_partitions_exactly():
    assert shard_counts(10, 4) == [4, 4, 2]
    assert shard_counts(8, 4) == [4, 4]
    assert shard_counts(3, 8) == [3]
    assert shard_counts(0, 8) == []
    with pytest.raises(ValueError):
        shard_counts(8, 0)
    with pytest.raises(ValueError):
        shard_counts(-1, 8)


def test_shard_seed_is_coordinate_derived():
    a = np.random.default_rng(shard_seed(7, "mesh", 4, 4, 0)).integers(0, 100, 8)
    b = np.random.default_rng(shard_seed(7, "mesh", 4, 4, 0)).integers(0, 100, 8)
    c = np.random.default_rng(shard_seed(7, "mesh", 4, 4, 1)).integers(0, 100, 8)
    d = np.random.default_rng(shard_seed(7, "cordalis", 4, 4, 0)).integers(0, 100, 8)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert not np.array_equal(a, d)
    assert kind_tag("mesh") != kind_tag("cordalis")


def test_topology_spec_roundtrip():
    assert topology_spec(ToroidalMesh(4, 5)) == ("mesh", 4, 5)
    assert topology_spec(TorusCordalis(3, 3)) == ("cordalis", 3, 3)


def _square(x):
    return x * x


def test_run_sharded_preserves_order():
    inline = run_sharded(_square, range(10), processes=0)
    pooled = run_sharded(_square, range(10), processes=3)
    assert inline == pooled == [i * i for i in range(10)]


# ----------------------------------------------------------------------
# process-count parity: bitwise-identical at 0, 1, and 4 processes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("processes", [1, 4])
def test_convergence_sweep_process_parity(processes):
    points = square_points("mesh", [4]) + square_points("cordalis", [4])
    kwargs = dict(replicas=48, shard_size=16, batch_size=16, seed=99)
    inline = convergence_sweep(points, **kwargs, processes=0)
    sharded = convergence_sweep(points, **kwargs, processes=processes)
    assert np.array_equal(inline, sharded)


@pytest.mark.parametrize("processes", [1, 4])
def test_census_process_parity(processes):
    kwargs = dict(kinds=["mesh", "cordalis"], sizes=[4], random_trials=800,
                  shard_size=256)
    assert below_bound_census(**kwargs, processes=0) == below_bound_census(
        **kwargs, processes=processes
    )


@pytest.mark.parametrize("processes", [1, 4])
def test_random_search_process_parity(processes):
    topo = ToroidalMesh(3, 3)
    a = random_dynamo_search(topo, 3, 3, 1000, [7, 11], shard_size=128,
                             processes=0)
    b = random_dynamo_search(topo, 3, 3, 1000, [7, 11], shard_size=128,
                             processes=processes)
    assert a.examined == b.examined == 1000
    assert len(a.witnesses) == len(b.witnesses)
    for (wa, ma), (wb, mb) in zip(a.witnesses, b.witnesses):
        assert np.array_equal(wa, wb) and ma == mb


def test_random_search_seed_material_forms_agree():
    """An int seed and a one-word entropy list derive the same shards."""
    topo = ToroidalMesh(3, 3)
    a = random_dynamo_search(topo, 3, 3, 500, 7, shard_size=100)
    b = random_dynamo_search(topo, 3, 3, 500, [7], shard_size=100)
    c = random_dynamo_search(topo, 3, 3, 500, np.random.SeedSequence([7]),
                             shard_size=100)
    assert len(a.witnesses) == len(b.witnesses) == len(c.witnesses)
    for (wa, _), (wb, _), (wc, _) in zip(a.witnesses, b.witnesses, c.witnesses):
        assert np.array_equal(wa, wb) and np.array_equal(wa, wc)


def test_random_search_generator_cannot_shard(rng):
    with pytest.raises(ValueError, match="Generator"):
        random_dynamo_search(ToroidalMesh(3, 3), 3, 3, 10, rng, processes=2)


def test_census_cells_are_independent():
    """Satellite regression: a cell's row no longer depends on which cells
    ran before it (one rng used to be threaded through all cells)."""
    both = below_bound_census(kinds=["mesh", "cordalis"], sizes=[4],
                              random_trials=1500)
    alone = below_bound_census(kinds=["cordalis"], sizes=[4],
                               random_trials=1500)
    assert both[1] == alone[0]


# ----------------------------------------------------------------------
# seed stability: exact outputs pinned for the default derivation
# ----------------------------------------------------------------------
def test_convergence_sweep_seed_stability():
    recs = convergence_sweep(
        square_points("mesh", [4, 5]),
        replicas=64,
        shard_size=16,
        batch_size=16,
    )
    assert list(recs["converged_frac"]) == [0.375, 0.46875]
    assert list(recs["monochromatic_frac"]) == [0.109375, 0.078125]
    assert list(recs["monotone_frac"]) == [0.078125, 0.0]
    assert recs["mean_rounds"][0] == pytest.approx(83 / 24)
    assert recs["mean_rounds"][1] == pytest.approx(5.4)
    assert list(recs["max_rounds"]) == [5, 9]


def test_census_seed_stability():
    rows = below_bound_census(kinds=["mesh", "cordalis"], sizes=[4],
                              random_trials=1500)
    mesh, cordalis = rows
    assert (mesh.certified_size, mesh.method, mesh.ruled_out_below) == (
        4, "diagonal", 4
    )
    assert (cordalis.certified_size, cordalis.method,
            cordalis.ruled_out_below) == (3, "random", None)


def test_random_search_seed_stability():
    out = random_dynamo_search(ToroidalMesh(3, 3), 3, 3, 1000, [7, 11],
                               shard_size=128)
    assert out.examined == 1000
    assert not out.exhaustive
    assert len(out.witnesses) == 35
