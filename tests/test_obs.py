"""Telemetry subsystem (repro.obs): unit, determinism, and parity tests.

Three layers, mirroring the contract in README "Telemetry":

* unit — sessions produce well-formed schema-versioned streams (meta
  line first, spans/counters/events after, spool directory cleaned up),
  levels gate correctly, and the no-session path is a strict no-op;
* determinism — :func:`repro.obs.merge_spool_lines` is invariant under
  arrival order (worker spools merge by stable keys, never by time);
* parity — the headline invariant: a census run with ``--telemetry``
  produces byte-identical stdout, witness database, and run ledger to
  one without, at 1 and at 4 processes, and the report over the
  captured stream shows per-shard timings, the plan-cache hit rate, and
  retry counts.
"""

import json

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_LEVEL,
    LEVELS,
    TELEMETRY_SCHEMA,
    merge_spool_lines,
    stable_fields,
    validate_level,
)
from repro.obs.report import (
    load_stream,
    render_summary,
    summarize,
    summarize_stream,
)


def _run_cli(args, capsys):
    from repro.cli import main

    code = main([str(a) for a in args])
    return code, capsys.readouterr().out


# ---------------------------------------------------------------------------
# unit: levels, sessions, stream shape
# ---------------------------------------------------------------------------


class TestLevels:
    def test_validate_level_accepts_all_tiers(self):
        for level in LEVELS:
            assert validate_level(level) == level
        assert DEFAULT_LEVEL in LEVELS

    def test_validate_level_rejects_unknown(self):
        with pytest.raises(ValueError, match="telemetry level"):
            validate_level("verbose")

    def test_disabled_by_default(self):
        assert obs.active_session() is None
        assert not obs.enabled("basic")

    def test_level_gating(self, tmp_path):
        path = tmp_path / "t.tel"
        with obs.telemetry_session(path, level="basic", command="unit"):
            assert obs.enabled("basic")
            assert not obs.enabled("detailed")
            assert not obs.enabled("debug")
            obs.emit("kept", level="basic")
            obs.emit("cut", level="debug")
        names = [r["name"] for r in load_stream(path) if r["kind"] == "event"]
        assert "kept" in names and "cut" not in names


class TestSessionStream:
    def test_stream_shape_and_cleanup(self, tmp_path):
        path = tmp_path / "t.tel"
        with obs.telemetry_session(
            path, level="debug", command="unit", context={"processes": 4}
        ):
            obs.count("plan-cache.hit", 3)
            with obs.span("phase", key="p1", level="basic"):
                pass
            obs.emit("shard-dispatch", key=0, level="debug")
        records = load_stream(path)
        meta = records[0]
        assert meta["kind"] == "meta"
        assert meta["schema"] == TELEMETRY_SCHEMA
        assert meta["command"] == "unit"
        assert meta["level"] == "debug"
        assert meta["status"] == "ok"
        assert meta["context"] == {"processes": 4}
        assert meta["events"] == len(records) - 1
        assert meta["dropped_lines"] == 0
        kinds = {r["kind"] for r in records[1:]}
        assert kinds == {"span", "event", "counter"}
        run_spans = [r for r in records if r.get("name") == "run"]
        assert len(run_spans) == 1 and run_spans[0]["perf_s"] >= 0.0
        counter = next(r for r in records if r["kind"] == "counter")
        assert (counter["name"], counter["n"]) == ("plan-cache.hit", 3)
        # the spool side-directory is transient
        assert not (tmp_path / "t.tel.spool").exists()

    def test_session_records_failure_status(self, tmp_path):
        path = tmp_path / "t.tel"
        with pytest.raises(RuntimeError):
            with obs.telemetry_session(path, command="unit"):
                raise RuntimeError("boom")
        assert load_stream(path)[0]["status"] == "error"
        assert obs.active_session() is None

    def test_none_path_is_noop(self, capsys):
        with obs.telemetry_session(None, command="unit") as session:
            assert session is None
            assert not obs.enabled()
            obs.count("x")
            obs.emit("y")
            with obs.span("z"):
                pass
        assert capsys.readouterr().out == ""

    def test_session_writes_nothing_to_stdout(self, tmp_path, capsys):
        with obs.telemetry_session(tmp_path / "t.tel", command="unit"):
            obs.emit("e", key=1)
        assert capsys.readouterr().out == ""

    def test_shard_call_passthrough_without_session(self):
        assert obs.shard_call(lambda u: u * 2, "k", 21) == 42

    def test_shard_call_emits_span_and_flushes_counters(self, tmp_path):
        path = tmp_path / "t.tel"
        with obs.telemetry_session(path, level="detailed", command="unit"):

            def work(unit):
                obs.count("backend.steps", unit)
                return unit

            assert obs.shard_call(work, ["size", 3], 7) == 7
        records = load_stream(path)
        shard = next(r for r in records if r.get("name") == "shard")
        assert shard["key"] == ["size", 3]
        steps = next(r for r in records if r.get("name") == "backend.steps")
        assert steps["n"] == 7 and steps["key"] == ["size", 3]


# ---------------------------------------------------------------------------
# determinism: spool merge is arrival-order independent
# ---------------------------------------------------------------------------


class TestMergeDeterminism:
    def _lines(self):
        mk = obs._canonical
        return [
            mk({"kind": "span", "name": "shard", "key": ["size", n], "seq": s,
                "pid": pid, "perf_s": 0.1 * n, "t_wall": 100.0 + n})
            for n, s, pid in [(3, 1, 11), (4, 2, 12), (5, 1, 13), (6, 2, 11)]
        ] + [
            mk({"kind": "counter", "name": "plan-cache.hit", "key": None,
                "seq": 9, "pid": 11, "n": 2, "t_wall": 101.0}),
            mk({"kind": "event", "name": "shard-retry", "key": ["size", 4],
                "seq": 3, "pid": 12, "attempt": 1, "t_wall": 102.0}),
        ]

    def test_merge_invariant_under_arrival_order(self):
        lines = self._lines()
        merged_a, dropped_a = merge_spool_lines([lines[:3], lines[3:]])
        merged_b, dropped_b = merge_spool_lines(
            [list(reversed(lines[3:])), list(reversed(lines[:3]))]
        )
        merged_c, _ = merge_spool_lines([lines[::-1]])
        assert merged_a == merged_b == merged_c
        assert dropped_a == dropped_b == 0
        assert len(merged_a) == len(lines)

    def test_merge_sorts_by_stable_keys_not_timing(self):
        lines = self._lines()
        merged, _ = merge_spool_lines([lines])
        keys = [json.loads(line)["key"] for line in merged
                if json.loads(line)["name"] == "shard"]
        assert keys == sorted(keys)  # shard order, not t_wall order

    def test_merge_drops_garbage_lines(self):
        merged, dropped = merge_spool_lines([["not json", ""], self._lines()[:1]])
        assert dropped == 1  # blank lines are skipped silently, not dropped
        assert len(merged) == 1

    def test_stable_fields_strips_only_volatile(self):
        record = {"kind": "span", "name": "shard", "key": [1], "seq": 2,
                  "pid": 9, "t_wall": 1.0, "perf_s": 2.0, "shards": 6}
        stable = stable_fields(record)
        assert "t_wall" not in stable and "perf_s" not in stable
        assert "pid" not in stable
        assert stable["shards"] == 6


# ---------------------------------------------------------------------------
# parity: telemetry is bitwise-invisible to stdout / db / ledger
# ---------------------------------------------------------------------------


CENSUS_ARGS = [
    "census", "--kinds", "mesh", "--sizes", "3", "4", "--trials", "64",
    "--batch-size", "16", "--shard-size", "16", "--seed", "11",
]


def _census(tmp_path, capsys, tag, processes, telemetry):
    db = tmp_path / f"{tag}.db"
    ledger = tmp_path / f"{tag}.ledger"
    args = CENSUS_ARGS + [
        "--processes", processes, "--db", db, "--run-ledger", ledger,
    ]
    if telemetry:
        args += ["--telemetry", tmp_path / f"{tag}.tel",
                 "--telemetry-level", "debug"]
    code, out = _run_cli(args, capsys)
    assert code == 0
    return out, db.read_bytes(), ledger.read_bytes()


@pytest.mark.parametrize("processes", [1, 4])
def test_census_parity_with_and_without_telemetry(tmp_path, capsys, processes):
    plain = _census(tmp_path, capsys, f"plain{processes}", processes, False)
    telem = _census(tmp_path, capsys, f"telem{processes}", processes, True)
    assert telem[0] == plain[0], "stdout must be byte-identical"
    assert telem[1] == plain[1], "witness db must be byte-identical"
    assert telem[2] == plain[2], "run ledger must be byte-identical"
    stream = tmp_path / f"telem{processes}.tel"
    assert stream.exists() and not (tmp_path / f"telem{processes}.tel.spool").exists()


def test_census_stream_report_contents(tmp_path, capsys):
    _census(tmp_path, capsys, "rep", 4, True)
    summary = summarize_stream(tmp_path / "rep.tel")
    assert summary["command"] == "census"
    assert summary["status"] == "ok"
    # per-shard timings
    assert summary["shards"]["count"] > 0
    assert summary["shards"]["slowest"], "slowest-shard table must be populated"
    for row in summary["shards"]["slowest"]:
        assert row["seconds"] >= 0.0 and row["key"] is not None
    # plan-cache hit rate
    cache = summary["plan_cache"]
    assert cache["hits"] + cache["misses"] > 0
    assert 0.0 <= cache["hit_rate"] <= 1.0
    # retry counts (a clean run reports zero, but the key must exist)
    assert summary["retries"] == 0
    assert summary["pool_rebuilds"] == 0
    # the run actually exercised the engine counters
    assert summary["counters"].get("witnessdb.append", 0) > 0
    human = render_summary(summary)
    assert human.startswith("telemetry report:")
    assert "plan cache" in human and "shards" in human


def test_cli_telemetry_report_json_and_human(tmp_path, capsys):
    _census(tmp_path, capsys, "cli", 1, True)
    stream = tmp_path / "cli.tel"
    code, out = _run_cli(["telemetry", "report", stream, "--json"], capsys)
    assert code == 0
    payload = json.loads(out)
    assert payload["command"] == "census"
    assert payload["shards"]["count"] > 0
    code, out = _run_cli(["telemetry", "report", stream, "--top", "2"], capsys)
    assert code == 0
    assert out.startswith("telemetry report:")


def test_cli_telemetry_report_missing_stream(tmp_path, capsys):
    from repro.cli import main

    code = main(["telemetry", "report", str(tmp_path / "absent.tel")])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_report_rejects_newer_schema(tmp_path):
    stream = tmp_path / "future.tel"
    stream.write_text(json.dumps({"schema": TELEMETRY_SCHEMA + 1,
                                  "kind": "meta"}) + "\n")
    with pytest.raises(ValueError, match="newer"):
        load_stream(stream)


def test_summarize_counts_retries():
    records = [
        {"kind": "meta", "command": "census", "level": "basic", "status": "ok"},
        {"kind": "event", "name": "shard-retry", "key": [0], "attempt": 1},
        {"kind": "event", "name": "shard-retry", "key": [0], "attempt": 2},
        {"kind": "event", "name": "pool-rebuild", "key": [0]},
    ]
    summary = summarize(records)
    assert summary["retries"] == 2
    assert summary["pool_rebuilds"] == 1
