"""Kernel-backend subsystem tests.

The contract of :mod:`repro.engine.backends` is **bitwise
interchangeability**: every registered backend must produce exactly the
arrays the ``reference`` backend produces, for every rule, topology, and
engine flag — that is what makes backend choice safe to exclude from
witness-database cache keys.  The parity matrix below pins it; the
seed-stability tests pin that searches and censuses (including their
recorded witness ids) do not depend on ``backend``.

The ``numba`` backend participates automatically when the optional
package is installed (CI runs a dedicated leg with it); without numba the
matrix covers the two NumPy backends and the unavailability error path.
"""

import numpy as np
import pytest

from repro.core.search import random_dynamo_search
from repro.engine import run_batch
from repro.engine.backends import (
    BackendUnavailableError,
    KernelBackend,
    available_backend_names,
    backend_names,
    fallback_stepper,
    select_backend,
)
from repro.engine.backends.numba_backend import numba_available
from repro.experiments import below_bound_census
from repro.io.witnessdb import WitnessDB
from repro.rules import (
    GeneralizedPluralityRule,
    LinearThresholdRule,
    OrderedIncrementRule,
    ReverseSimpleMajority,
    ReverseStrongMajority,
    Rule,
    SMPRule,
)
from repro.topology import GraphTopology, ToroidalMesh

from helpers import TORUS_KINDS

#: the per-rule palettes of the parity matrix (name -> factory, low,
#: palette size, target color), mirroring test_engine_batch.RULE_CASES
RULE_CASES = {
    "smp": (lambda: SMPRule(), 0, 4, 0),
    "majority": (lambda: ReverseSimpleMajority("prefer-black"), 1, 2, 2),
    "majority-pc": (lambda: ReverseSimpleMajority("prefer-current"), 1, 2, 2),
    "strong-majority": (lambda: ReverseStrongMajority(), 0, 4, 0),
    "plurality": (lambda: GeneralizedPluralityRule(5), 0, 5, 0),
    "ordered": (lambda: OrderedIncrementRule(4), 0, 4, 3),
    "threshold": (lambda: LinearThresholdRule("simple"), 0, 2, 1),
}

#: engine-flag variants of the parity matrix: cycle detection on/off,
#: frozen vertices, and the irreversible-color mode
VARIANTS = {
    "plain": {},
    "no-cycles": {"detect_cycles": False},
    "frozen": {"frozen": [0, 3, 7]},
    "irreversible": {},  # irreversible_color filled per-case (target)
}

RESULT_FIELDS = (
    "final", "rounds", "converged", "cycle_length", "fixed_point_round",
    "monotone",
)


@pytest.fixture(params=sorted(RULE_CASES))
def rule_case(request):
    return request.param


@pytest.fixture(params=[n for n in available_backend_names() if n != "reference"])
def fast_backend(request):
    """Every registered non-reference backend that can run here."""
    return request.param


def _assert_results_equal(res, ref, context):
    for field in RESULT_FIELDS:
        a, b = getattr(res, field), getattr(ref, field)
        if a is None or b is None:
            assert a is b, (context, field)
        else:
            assert np.array_equal(a, b), (context, field)


# ----------------------------------------------------------------------
# the parity matrix: backends x rules x torus kinds x engine flags
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_backend_parity_matrix(rng, torus_kind, rule_case, fast_backend, variant):
    topo = TORUS_KINDS[torus_kind](4, 5)
    factory, low, palette, target = RULE_CASES[rule_case]
    rule = factory()
    batch = rng.integers(low, low + palette, size=(24, topo.num_vertices)).astype(
        np.int32
    )
    kwargs = dict(VARIANTS[variant])
    if variant == "irreversible":
        kwargs["irreversible_color"] = target
    ref = run_batch(
        topo, batch, rule, max_rounds=100, target_color=target,
        backend="reference", **kwargs,
    )
    res = run_batch(
        topo, batch, rule, max_rounds=100, target_color=target,
        backend=fast_backend, **kwargs,
    )
    _assert_results_equal(res, ref, (fast_backend, rule_case, variant))


def test_backend_parity_on_padded_irregular_graph(rng, fast_backend):
    """Padded neighbor tables (degrees 1/2) through the spec'd kernels."""
    import networkx as nx

    topo = GraphTopology(nx.path_graph(7))
    for rule in (
        GeneralizedPluralityRule(4),
        OrderedIncrementRule(3),
        LinearThresholdRule("strong"),
    ):
        palette = getattr(rule, "num_colors", 2)
        batch = rng.integers(0, palette, size=(11, 7)).astype(np.int32)
        stepper = select_backend(fast_backend).compile(rule, topo, 11)
        assert np.array_equal(stepper(batch), rule.step_batch(batch, topo))


def test_backend_steppers_tolerate_shrinking_batches(rng, fast_backend):
    """run_batch retires rows, so steppers see shrinking widths; results
    must not depend on the compile-time max_batch."""
    topo = ToroidalMesh(4, 4)
    rule = SMPRule()
    stepper = select_backend(fast_backend).compile(rule, topo, 16)
    for b in (16, 7, 1, 9):  # shrink and re-grow within capacity
        batch = rng.integers(0, 4, size=(b, topo.num_vertices)).astype(np.int32)
        assert np.array_equal(stepper(batch), rule.step_batch(batch, topo))


def test_backend_validation_errors_match_reference(fast_backend):
    """Domain validation raises the rule's own ValueError on every backend."""
    topo = ToroidalMesh(3, 3)
    bad = np.full((2, 9), 7, dtype=np.int32)
    for rule in (
        ReverseSimpleMajority("prefer-black"),
        GeneralizedPluralityRule(4),
        OrderedIncrementRule(4),
        LinearThresholdRule("simple"),
    ):
        with pytest.raises(ValueError):
            run_batch(topo, bad, rule, max_rounds=5, backend=fast_backend)


def test_smp_on_irregular_topology_raises_on_every_backend(fast_backend):
    import networkx as nx

    star = GraphTopology(nx.star_graph(5))
    batch = np.zeros((2, 6), dtype=np.int32)
    with pytest.raises(ValueError):
        run_batch(star, batch, SMPRule(), max_rounds=5, backend=fast_backend)


def test_fractional_plurality_thresholds_fall_back(rng, fast_backend):
    """A fractional threshold_fn (counts >= 2.5) has no exact integer
    spec; the rule must publish none, so every backend runs the
    reference kernel and stays bitwise-identical."""
    topo = ToroidalMesh(4, 4)
    rule = GeneralizedPluralityRule(4, threshold_fn=lambda d: d / 2 + 0.5)
    assert rule.kernel_spec(topo) is None
    batch = rng.integers(0, 4, size=(16, topo.num_vertices)).astype(np.int32)
    stepper = select_backend(fast_backend).compile(rule, topo, 16)
    assert np.array_equal(stepper(batch), rule.step_batch(batch, topo))
    # integral-valued float thresholds are exact and keep the fast path
    exact = GeneralizedPluralityRule(4, threshold_fn=lambda d: np.ceil(d / 2))
    spec = exact.kernel_spec(topo)
    assert spec is not None and spec.thresholds.dtype == np.int64
    stepper = select_backend(fast_backend).compile(exact, topo, 16)
    assert np.array_equal(stepper(batch), exact.step_batch(batch, topo))


def test_subclassed_kernel_override_beats_inherited_spec(rng, fast_backend):
    """A subclass overriding step_batch without republishing kernel_spec
    must run its own kernel — the parent's spec is not authoritative."""

    class NeverRecolor(SMPRule):
        def step_batch(self, colors, topo, out=None):
            if out is None:
                return colors.copy()
            np.copyto(out, colors)
            return out

    topo = ToroidalMesh(4, 4)
    batch = rng.integers(0, 4, size=(8, topo.num_vertices)).astype(np.int32)
    stepper = select_backend(fast_backend).compile(NeverRecolor(), topo, 8)
    assert np.array_equal(stepper(batch), batch)
    # a subclass that republishes its spec opts back into the fast path
    from repro.rules import KernelSpec

    class RepublishedSMP(SMPRule):
        def step_batch(self, colors, topo, out=None):
            return SMPRule.step_batch(self, colors, topo, out=out)

        def kernel_spec(self, topo):
            return KernelSpec(kind="smp")

    stepper = select_backend(fast_backend).compile(RepublishedSMP(), topo, 8)
    assert np.array_equal(stepper(batch), SMPRule().step_batch(batch, topo))


def test_mixin_kernel_override_beats_inherited_spec(rng, fast_backend):
    """A kernel supplied by a mixin (not a subclass of the spec's owner)
    must also win over the inherited spec — MRO order decides."""

    class IdentityMixin:
        def step_batch(self, colors, topo, out=None):
            if out is None:
                return colors.copy()
            np.copyto(out, colors)
            return out

    class MixedRule(IdentityMixin, SMPRule):
        pass

    topo = ToroidalMesh(4, 4)
    batch = rng.integers(0, 4, size=(8, topo.num_vertices)).astype(np.int32)
    for backend in ("reference", fast_backend):
        stepper = select_backend(backend).compile(MixedRule(), topo, 8)
        assert np.array_equal(stepper(batch), batch), backend


def test_convergence_sweep_backend_instance_inline_only():
    """convergence_sweep accepts an unregistered instance inline (the
    shard carries the instance, not a dangling name) and rejects it
    before forking when a pool could spin up."""
    from repro.experiments import convergence_sweep

    class Inline(KernelBackend):
        name = "inline-only"

        def compile(self, rule, topo, max_batch):
            return fallback_stepper(rule, topo)

    kwargs = dict(replicas=64, batch_size=32)
    recs = convergence_sweep([("mesh", 4, 4)], processes=0,
                             backend=Inline(), **kwargs)
    assert np.array_equal(
        recs, convergence_sweep([("mesh", 4, 4)], processes=0, **kwargs)
    )
    with pytest.raises(ValueError, match="cannot cross process boundaries"):
        convergence_sweep([("mesh", 4, 4)], processes=2,
                          backend=Inline(), **kwargs)


def test_census_rejects_backend_instance_before_any_cell_runs(tmp_path):
    """An unpicklable backend instance with a worker pool must fail
    before the first cell, not mid-census after work (and db writes)."""

    class Inline(KernelBackend):
        name = "inline-only"

        def compile(self, rule, topo, max_batch):
            return fallback_stepper(rule, topo)

    db = WitnessDB(tmp_path / "w.jsonl")
    with pytest.raises(ValueError, match="cannot cross process boundaries"):
        below_bound_census(
            kinds=["mesh"], sizes=[3], random_trials=100,
            processes=2, db=db, backend=Inline(),
        )
    assert len(db) == 0  # nothing was computed or recorded
    # inline census accepts the instance
    rows = below_bound_census(
        kinds=["mesh"], sizes=[3], random_trials=100,
        processes=0, backend=Inline(),
    )
    assert rows[0].method == "exhaustive"


def test_threshold_cache_is_identity_safe_and_picklable():
    """thresholds_for caches per live topology object (weakref, not id),
    and a warm cache must not break shard pickling."""
    import pickle

    rule = LinearThresholdRule("simple")
    topo = ToroidalMesh(4, 4)
    thr = rule.thresholds_for(topo)
    assert rule.thresholds_for(topo) is thr  # cache hit on same object
    other = ToroidalMesh(2, 8)  # same vertex count, different degrees?
    assert rule.thresholds_for(other) is not thr
    clone = pickle.loads(pickle.dumps(rule))  # warm cache round-trips
    assert np.array_equal(clone.thresholds_for(topo), thr)


def test_custom_rule_without_spec_falls_back(rng, fast_backend):
    """A rule with no kernel spec runs via its own step_batch everywhere."""

    class Stubborn(Rule):
        def step(self, colors, topo, out=None):
            if out is None:
                return colors.copy()
            np.copyto(out, colors)
            return out

        def update_vertex(self, current, neighbor_colors):
            return current

    topo = ToroidalMesh(3, 3)
    rule = Stubborn()
    assert rule.kernel_spec(topo) is None
    batch = rng.integers(0, 3, size=(4, 9)).astype(np.int32)
    res = run_batch(topo, batch, rule, max_rounds=10, backend=fast_backend)
    assert res.converged.all()
    assert np.array_equal(res.final, batch)


# ----------------------------------------------------------------------
# registry / selection
# ----------------------------------------------------------------------
def test_registry_names():
    assert backend_names() == ("reference", "stencil", "numba")
    assert "reference" in available_backend_names()
    assert "stencil" in available_backend_names()


def test_select_backend_auto_is_stencil():
    assert select_backend(None).name == "stencil"
    assert select_backend("auto").name == "stencil"


def test_select_backend_unknown_name_lists_choices():
    with pytest.raises(ValueError, match="unknown kernel backend.*stencil"):
        select_backend("cuda")


def test_select_backend_instance_passthrough():
    class Custom(KernelBackend):
        name = "custom"

        def compile(self, rule, topo, max_batch):
            return fallback_stepper(rule, topo)

    backend = Custom()
    assert select_backend(backend) is backend
    # an instance works end to end without registration
    topo = ToroidalMesh(3, 3)
    batch = np.zeros((2, 9), dtype=np.int32)
    res = run_batch(topo, batch, SMPRule(), max_rounds=5, backend=backend)
    assert res.converged.all()


@pytest.mark.skipif(numba_available(), reason="numba is installed here")
def test_numba_unavailable_raises_actionable_error():
    with pytest.raises(BackendUnavailableError, match="pip install numba"):
        select_backend("numba")
    assert "numba" not in available_backend_names()
    assert "numba" in backend_names()  # registered, just not runnable


def test_third_party_backend_availability_hook():
    """A custom backend reports its own unavailability through the same
    hook the shipped numba backend uses."""

    class Gated(KernelBackend):
        name = "gated"

        def __init__(self, error):
            self._error = error

        def availability_error(self):
            return self._error

        def compile(self, rule, topo, max_batch):
            return fallback_stepper(rule, topo)

    from repro.engine.backends import _REGISTRY, register_backend

    register_backend(Gated("needs the frobnicator"))
    try:
        assert "gated" in backend_names()
        assert "gated" not in available_backend_names()
        with pytest.raises(BackendUnavailableError, match="frobnicator"):
            select_backend("gated")
        register_backend(Gated(None))
        assert select_backend("gated").availability_error() is None
    finally:
        _REGISTRY.pop("gated", None)


def test_backend_instance_cannot_cross_process_boundaries():
    """Sharded searches take backend *names* only — an instance would be
    pickled into pool workers, so it is rejected up front (inline runs
    accept it)."""

    class Inline(KernelBackend):
        name = "inline-only"

        def compile(self, rule, topo, max_batch):
            return fallback_stepper(rule, topo)

    topo = ToroidalMesh(4, 4)
    out = random_dynamo_search(
        topo, 3, 4, 64, 0xBEEF, processes=0, backend=Inline()
    )
    assert out.examined == 64
    with pytest.raises(ValueError, match="cannot cross process boundaries"):
        random_dynamo_search(
            topo, 3, 4, 64, 0xBEEF, processes=2, backend=Inline()
        )


# ----------------------------------------------------------------------
# seed stability: results and witness ids are backend-independent
# ----------------------------------------------------------------------
def test_random_search_is_backend_independent(fast_backend):
    topo = ToroidalMesh(4, 4)
    kwargs = dict(k=0, monotone_only=True, batch_size=128, processes=0)
    ref = random_dynamo_search(topo, 3, 5, 4096, 0xBEEF,
                              backend="reference", **kwargs)
    out = random_dynamo_search(topo, 3, 5, 4096, 0xBEEF,
                               backend=fast_backend, **kwargs)
    assert out.examined == ref.examined
    assert len(out.witnesses) == len(ref.witnesses)
    for (ca, ma), (cb, mb) in zip(out.witnesses, ref.witnesses):
        assert ma == mb and np.array_equal(ca, cb)
    assert ref.found_monotone_dynamo  # the pin is meaningful: hits exist


def test_census_rows_and_witness_ids_are_backend_independent(
    tmp_path, fast_backend
):
    kwargs = dict(kinds=["mesh"], sizes=[3], random_trials=400)
    dbs, rows = {}, {}
    for name in ("reference", fast_backend):
        db = WitnessDB(tmp_path / f"{name}.jsonl")
        rows[name] = below_bound_census(db=db, backend=name, **kwargs)
        dbs[name] = db
    assert rows["reference"] == rows[fast_backend]
    ref_ids = sorted(r.id for r in dbs["reference"])
    assert ref_ids == sorted(r.id for r in dbs[fast_backend])
    assert ref_ids  # witnesses were actually recorded
    # the discovery backend lands in provenance (forensics), never the key
    for name, db in dbs.items():
        assert all(r.provenance.get("backend") == name for r in db)
    assert (
        sorted(c.id for c in dbs["reference"].cells)
        == sorted(c.id for c in dbs[fast_backend].cells)
    )


def test_cached_census_serves_across_backends(tmp_path, fast_backend):
    """A census computed under one backend serves cache hits to another —
    the definition key is backend-independent by design."""
    path = tmp_path / "w.jsonl"
    kwargs = dict(kinds=["mesh"], sizes=[3], random_trials=400)
    first = below_bound_census(db=WitnessDB(path), backend="reference", **kwargs)
    stats = {}
    second = below_bound_census(
        db=WitnessDB(path), backend=fast_backend, stats=stats, **kwargs
    )
    assert first == second
    assert stats["cache_hits"] == stats["cells"] == 1


# ----------------------------------------------------------------------
# CLI / driver validation (the --batch-size / --shard-size satellite)
# ----------------------------------------------------------------------
def test_validate_positive():
    from repro.engine.parallel import validate_positive

    assert validate_positive(8, flag="--batch-size") == 8
    assert isinstance(validate_positive(np.int64(8)), int)
    for bad in (0, -3, 2.5, "x", None, True):
        with pytest.raises(ValueError, match="must be"):
            validate_positive(bad, flag="--batch-size")
    # a non-integral value >= 1 is called out as non-integral, not "< 1"
    with pytest.raises(ValueError, match="positive integer"):
        validate_positive(2.5, flag="--batch-size")


@pytest.mark.parametrize(
    "argv",
    [
        ["census", "--batch-size", "0"],
        ["census", "--shard-size", "-4"],
        ["census", "--batch-size", "x"],
        ["sweep", "mesh", "4", "--convergence", "--batch-size", "-1"],
        ["sweep", "mesh", "4", "--convergence", "--shard-size", "0"],
        ["search", "mesh", "4", "4", "--seed-size", "3", "--batch-size", "0"],
        ["search", "mesh", "4", "4", "--seed-size", "3", "--shard-size", "0"],
        ["census", "--backend", "cuda"],
    ],
)
def test_cli_rejects_bad_tuning_flags(capsys, argv):
    from repro.cli import build_parser

    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "must be" in err or "unknown kernel backend" in err


def test_cli_accepts_backend_flag():
    from repro.cli import build_parser

    args = build_parser().parse_args(["census", "--backend", "stencil"])
    assert args.backend == "stencil"
    args = build_parser().parse_args(["census"])
    assert args.backend is None


def test_drivers_reject_nonpositive_sizes():
    from repro.experiments import below_bound_census, convergence_sweep

    with pytest.raises(ValueError, match="batch_size"):
        below_bound_census(kinds=["mesh"], sizes=[3], batch_size=0)
    with pytest.raises(ValueError, match="shard_size"):
        below_bound_census(kinds=["mesh"], sizes=[3], shard_size=-1)
    with pytest.raises(ValueError, match="shard_size"):
        convergence_sweep([("mesh", 4, 4)], shard_size=0)
    with pytest.raises(ValueError, match="shard_size"):
        random_dynamo_search(ToroidalMesh(4, 4), 3, 4, 10, 0, shard_size=0)


# ----------------------------------------------------------------------
# the merged scalar/batched kernel (one kernel per rule)
# ----------------------------------------------------------------------
def test_scalar_step_is_the_batched_kernel(rng, rule_case):
    """`step` runs `step_batch` on a (1, N) view — same values, out= honored."""
    topo = ToroidalMesh(4, 5)
    factory, low, palette, _ = RULE_CASES[rule_case]
    rule = factory()
    colors = rng.integers(low, low + palette, size=topo.num_vertices).astype(
        np.int32
    )
    expect = rule.step_batch(colors[None, :], topo)[0]
    assert np.array_equal(rule.step(colors, topo), expect)
    out = np.empty_like(colors)
    assert rule.step(colors, topo, out=out) is out
    assert np.array_equal(out, expect)


def test_rule_overriding_neither_kernel_raises():
    class Broken(Rule):
        def update_vertex(self, current, neighbor_colors):
            return current

    topo = ToroidalMesh(3, 3)
    colors = np.zeros(9, dtype=np.int32)
    with pytest.raises(TypeError, match="neither step_batch nor step"):
        Broken().step(colors, topo)
    with pytest.raises(TypeError, match="neither step_batch nor step"):
        Broken().step_batch(colors[None, :], topo)
