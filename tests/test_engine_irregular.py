"""Irregular-graph engine parity and structural plan caching.

Two contracts are pinned here:

* **bitwise parity off the torus** — every registered backend, driven
  through :func:`run_batch`, produces exactly the rule's own
  ``step_batch`` trajectory on padded irregular neighbor tables (stars,
  paths, BA samples, isolated vertices, disconnected pieces), and the
  scalar :meth:`step_reference` oracle agrees vertex by vertex;
* **structural plan caching** — :meth:`GraphTopology.structure_token`
  hashes the degree/neighbor tables, so two instances built from the
  same graph (e.g. pool workers rebuilding one BA seed) share cached
  steppers, while distinct graphs never do.
"""

import numpy as np
import pytest

from repro.engine import clear_plan_cache, plan_cache_stats, run_batch, run_synchronous
from repro.engine.backends import available_backend_names
from repro.engine.plans import topology_token
from repro.rules import (
    GeneralizedPluralityRule,
    LinearThresholdRule,
    OrderedIncrementRule,
)
from repro.topology import (
    AlwaysAvailable,
    GraphTopology,
    TemporalTopology,
    ToroidalMesh,
)

RESULT_FIELDS = (
    "final", "rounds", "converged", "cycle_length", "fixed_point_round",
    "monotone",
)

#: irregular-rule cases: factory, palette size, target color
RULE_CASES = {
    "plurality": (lambda: GeneralizedPluralityRule(5), 5, 0),
    "ordered": (lambda: OrderedIncrementRule(4), 4, 3),
    "threshold": (lambda: LinearThresholdRule("simple"), 2, 1),
}


def _graphs():
    """Named irregular topologies covering the padding edge cases."""
    import networkx as nx

    return {
        "star": GraphTopology(nx.star_graph(6)),
        "path": GraphTopology(nx.path_graph(9)),
        "ba": GraphTopology(nx.barabasi_albert_graph(24, 2, seed=7)),
        # vertex 5 is isolated (degree 0: fully padded row)
        "isolated": GraphTopology([(0, 1), (1, 2), (2, 3), (3, 4)],
                                  num_vertices=6),
        "two-pieces": GraphTopology([(0, 1), (1, 2), (0, 2), (3, 4)]),
    }


@pytest.fixture(params=sorted(RULE_CASES))
def rule_case(request):
    return request.param


@pytest.fixture(params=[n for n in available_backend_names() if n != "reference"])
def fast_backend(request):
    return request.param


def _assert_results_equal(res, ref, context):
    for field in RESULT_FIELDS:
        a, b = getattr(res, field), getattr(ref, field)
        if a is None or b is None:
            assert a is b, (context, field)
        else:
            assert np.array_equal(a, b), (context, field)


# ----------------------------------------------------------------------
# parity: backends x rules x irregular graphs, through run_batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["plain", "no-cycles", "frozen"])
def test_irregular_parity_matrix(rng, rule_case, fast_backend, variant):
    factory, palette, target = RULE_CASES[rule_case]
    kwargs = {
        "plain": {},
        "no-cycles": {"detect_cycles": False},
        "frozen": {"frozen": [0, 2]},
    }[variant]
    for name, topo in _graphs().items():
        rule = factory()
        batch = rng.integers(0, palette, size=(12, topo.num_vertices)).astype(
            np.int32
        )
        ref = run_batch(topo, batch, rule, max_rounds=60, target_color=target,
                        backend="reference", **kwargs)
        res = run_batch(topo, batch, rule, max_rounds=60, target_color=target,
                        backend=fast_backend, **kwargs)
        _assert_results_equal(res, ref, (name, rule_case, variant))


def test_step_batch_matches_scalar_oracle_on_irregular_graphs(rng, rule_case):
    """One round of the vectorized kernel == update_vertex at every vertex."""
    factory, palette, _ = RULE_CASES[rule_case]
    for name, topo in _graphs().items():
        rule = factory()
        block = rng.integers(0, palette, size=(4, topo.num_vertices)).astype(
            np.int32
        )
        stepped = rule.step_batch(block, topo)
        for i in range(block.shape[0]):
            expect = rule.step_reference(block[i], topo)
            assert np.array_equal(stepped[i], expect), (name, rule_case, i)


def test_run_batch_row_matches_run_synchronous_on_graph(rng, rule_case):
    factory, palette, target = RULE_CASES[rule_case]
    topo = _graphs()["ba"]
    rule = factory()
    colors = rng.integers(0, palette, size=topo.num_vertices).astype(np.int32)
    scalar = run_synchronous(topo, colors, rule, max_rounds=60,
                             target_color=target)
    batched = run_batch(topo, colors[None, :], rule, max_rounds=60,
                        target_color=target)
    assert np.array_equal(batched.final[0], scalar.final)
    assert int(batched.rounds[0]) == scalar.rounds
    assert bool(batched.converged[0]) == scalar.converged
    assert bool(batched.monotone[0]) == bool(scalar.monotone)


def test_isolated_vertices_never_recolor(rng):
    topo = _graphs()["isolated"]
    rule = GeneralizedPluralityRule(4)
    batch = rng.integers(0, 4, size=(8, topo.num_vertices)).astype(np.int32)
    res = run_batch(topo, batch, rule, max_rounds=40)
    assert np.array_equal(res.final[:, 5], batch[:, 5])


# ----------------------------------------------------------------------
# GraphTopology construction validation
# ----------------------------------------------------------------------
def test_graph_rejects_out_of_range_vertex_ids():
    with pytest.raises(ValueError, match=r"outside \[0, 2\)"):
        GraphTopology([(0, 1), (1, -1)])
    with pytest.raises(ValueError, match="smaller than largest edge endpoint"):
        GraphTopology([(0, 4)], num_vertices=2)


def test_graph_rejects_self_loops():
    with pytest.raises(ValueError, match="self-loop at vertex 2"):
        GraphTopology([(0, 1), (2, 2)])


def test_graph_ignores_duplicate_edges():
    topo = GraphTopology([(0, 1), (1, 0), (0, 1)])
    assert topo.degrees.tolist() == [1, 1]
    assert topo.neighbors.tolist() == [[1], [0]]


# ----------------------------------------------------------------------
# structural tokens and stepper-cache sharing
# ----------------------------------------------------------------------
def _same_ba(seed=11):
    import networkx as nx

    return GraphTopology(nx.barabasi_albert_graph(20, 2, seed=seed))


def test_structure_token_is_content_addressed():
    a, b = _same_ba(), _same_ba()
    assert a is not b
    assert a.structure_token() == b.structure_token()
    assert a.structure_token()[0] == "graph"
    assert a.structure_token() != _same_ba(seed=12).structure_token()
    # shape is part of the hash: same bytes, different table width, differ
    assert (GraphTopology([(0, 1)]).structure_token()
            != GraphTopology([(0, 1), (1, 2)]).structure_token())


def test_structure_token_default_and_temporal_delegation():
    torus = ToroidalMesh(4, 4)
    assert torus.structure_token() is None
    graph = _same_ba()
    ttopo = TemporalTopology(graph, AlwaysAvailable())
    assert ttopo.structure_token() == graph.structure_token()


def test_topology_token_uses_structure_token():
    a, b = _same_ba(), _same_ba()
    assert topology_token(a) == topology_token(b)
    assert topology_token(a) != topology_token(_same_ba(seed=12))


def test_plan_cache_shared_across_equal_graph_instances(rng):
    clear_plan_cache()
    try:
        rule = GeneralizedPluralityRule(4)
        batch = rng.integers(0, 4, size=(6, 20)).astype(np.int32)
        res_a = run_batch(_same_ba(), batch, rule, max_rounds=30)
        s = plan_cache_stats()
        assert (s.hits, s.misses) == (0, 1)
        # a fresh instance of the same graph hits the cached stepper
        res_b = run_batch(_same_ba(), batch, rule, max_rounds=30)
        s = plan_cache_stats()
        assert (s.hits, s.misses) == (1, 1)
        assert np.array_equal(res_a.final, res_b.final)
        # a structurally different graph compiles its own stepper
        run_batch(_same_ba(seed=12), batch, rule, max_rounds=30)
        assert plan_cache_stats().misses == 2
    finally:
        clear_plan_cache()
