"""Importable shared test helpers.

Test modules import these with ``from helpers import ...`` (pytest's
default ``prepend`` import mode puts each test module's directory on
``sys.path``).  They deliberately do NOT live in ``conftest.py``:
``conftest`` is a rootdir-wide singleton module name, so importing from
it breaks as soon as another directory (e.g. ``benchmarks/``) also has a
``conftest.py`` collected in the same session.
"""

from __future__ import annotations

import numpy as np

from repro.topology import ToroidalMesh, TorusCordalis, TorusSerpentinus

#: the three torus classes, keyed by the registry names used everywhere
TORUS_KINDS = {
    "mesh": ToroidalMesh,
    "cordalis": TorusCordalis,
    "serpentinus": TorusSerpentinus,
}


def random_coloring(topo, num_colors, rng, low=0):
    """Uniform random coloring with colors in [low, low + num_colors)."""
    return rng.integers(low, low + num_colors, size=topo.num_vertices).astype(
        np.int32
    )


def grid_colors(topo, rows):
    """Build a color vector from a list-of-lists grid literal."""
    arr = np.asarray(rows, dtype=np.int32)
    assert arr.shape == (topo.m, topo.n)
    return arr.reshape(-1)
