"""Text-chart helper tests."""


from repro.viz import ascii_line_chart, series_table, sparkline


def test_sparkline_range():
    s = sparkline([0, 1, 2, 3])
    assert len(s) == 4
    assert s[0] == " " and s[-1] == "@"


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    flat = sparkline([5, 5, 5])
    assert len(set(flat)) == 1


def test_ascii_line_chart_shape():
    chart = ascii_line_chart([1, 5, 3, 9], height=4, title="demo")
    lines = chart.splitlines()
    assert lines[0] == "demo"
    assert len(lines) == 1 + 4 + 1  # title + levels + axis
    assert lines[-1].strip().startswith("+")
    # the max point reaches the top level
    assert "#" in lines[1]


def test_ascii_line_chart_empty():
    assert ascii_line_chart([], title="t") == "t"


def test_series_table_alignment():
    table = series_table(
        ["size", "rounds"], [[5, 8], [9, 16], [13, 24]]
    )
    lines = table.splitlines()
    assert len(lines) == 5
    assert lines[0].split() == ["size", "rounds"]
    assert lines[2].split() == ["5", "8"]
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # perfectly aligned


def test_adoption_curve_charts_integrate():
    from repro.core import theorem4_cordalis_dynamo
    from repro.engine import adoption_curve, run_synchronous
    from repro.rules import SMPRule

    con = theorem4_cordalis_dynamo(5, 5)
    res = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k)
    curve = adoption_curve(res, con.k)
    assert len(sparkline(curve)) == len(curve)
    chart = ascii_line_chart(curve, height=6)
    assert chart.count("\n") == 6
