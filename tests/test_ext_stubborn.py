"""Stubborn-entities experiments (ref [5] companion model)."""

import numpy as np

from repro.core import theorem2_mesh_dynamo, theorem4_cordalis_dynamo
from repro.ext import stubborn_blockade, stubborn_core_experiment


def test_zero_stubborn_recovers_dynamo(rng):
    con = theorem2_mesh_dynamo(6, 6)
    out = stubborn_blockade(con, 0, rng)
    assert out.reached_monochromatic
    assert out.final_k_fraction == 1.0


def test_one_stubborn_dissenter_prevents_monochromatic(rng):
    con = theorem2_mesh_dynamo(6, 6)
    out = stubborn_blockade(con, 1, rng)
    assert out.stubborn_count == 1
    assert not out.reached_monochromatic
    # ...but the rest of the torus still converts almost entirely
    assert out.final_k_fraction >= 1.0 - 6 / 36


def test_blockade_fraction_decreases_with_stubborn_count(rng):
    con = theorem4_cordalis_dynamo(6, 6)
    fractions = []
    for count in (0, 4, 16):
        outs = [
            stubborn_blockade(con, count, np.random.default_rng(s))
            for s in range(5)
        ]
        fractions.append(np.mean([o.final_k_fraction for o in outs]))
    assert fractions[0] >= fractions[1] >= fractions[2]
    assert fractions[0] == 1.0


def test_stubborn_count_clamped(rng):
    con = theorem2_mesh_dynamo(4, 4)
    out = stubborn_blockade(con, 10_000, rng)
    assert out.stubborn_count == (~con.seed).sum()


def test_repaint_color_applied(rng):
    con = theorem2_mesh_dynamo(5, 5)
    out = stubborn_blockade(con, 3, rng, repaint_color=con.k)
    # stubborn supporters pinned to k can only help
    assert out.final_k_fraction >= 0.5


def test_stubborn_core_random_complements(rng):
    con = theorem4_cordalis_dynamo(5, 5)
    fractions = stubborn_core_experiment(con, rng, trials=10)
    assert len(fractions) == 10
    assert all(0.0 < f <= 1.0 for f in fractions)
    # the seed itself always stays k
    assert min(fractions) >= con.seed_size / con.topo.num_vertices
