"""Batched multi-replica engine tests.

The contract of :func:`repro.engine.batch.run_batch` is row-for-row
bitwise agreement with :func:`repro.engine.runner.run_synchronous` — for
*every* rule, on every torus kind, including frozen and irreversible
vertices and cycle detection.  Seeded property tests below pin that
contract for all five rule families; the fast per-rule ``step_batch``
kernels are additionally checked against the base-class row-loop oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import run_batch, run_synchronous
from repro.engine.batch import as_color_batch
from repro.rules import (
    GeneralizedPluralityRule,
    LinearThresholdRule,
    OrderedIncrementRule,
    ReverseSimpleMajority,
    ReverseStrongMajority,
    Rule,
    SMPRule,
    make_rule,
)
from repro.topology import GraphTopology, ToroidalMesh

from helpers import TORUS_KINDS

#: (name, rule factory, palette low, palette size, target color) — one per
#: rule family; palettes respect each rule's domain (bi-colored majority
#: on {WHITE=1, BLACK=2}, TSS threshold on {0, 1}).
RULE_CASES = {
    "smp": (lambda: SMPRule(), 0, 4, 0),
    "majority": (lambda: ReverseSimpleMajority("prefer-black"), 1, 2, 2),
    "majority-pc": (lambda: ReverseSimpleMajority("prefer-current"), 1, 2, 2),
    "strong-majority": (lambda: ReverseStrongMajority(), 0, 4, 0),
    "plurality": (lambda: GeneralizedPluralityRule(4), 0, 4, 0),
    "ordered": (lambda: OrderedIncrementRule(4), 0, 4, 3),
    "threshold": (lambda: LinearThresholdRule("simple"), 0, 2, 1),
}


@pytest.fixture(params=sorted(RULE_CASES))
def rule_case(request):
    return request.param


def _random_batch(rng, topo, low, palette, b):
    return rng.integers(low, low + palette, size=(b, topo.num_vertices)).astype(
        np.int32
    )


def _assert_rows_match(res, topo, batch, rule, target, **kwargs):
    """Row-for-row comparison of a BatchRunResult against the scalar runner."""
    for i in range(batch.shape[0]):
        ref = run_synchronous(
            topo, batch[i], rule, target_color=target, **kwargs
        )
        assert np.array_equal(res.final[i], ref.final)
        assert bool(res.converged[i]) == ref.converged
        assert int(res.rounds[i]) == ref.rounds
        cyc = int(res.cycle_length[i])
        assert (cyc if cyc > 0 else None) == ref.cycle_length
        fpr = int(res.fixed_point_round[i])
        assert (fpr if fpr >= 0 else None) == ref.fixed_point_round
        assert bool(res.monotone[i]) == ref.monotone


# ----------------------------------------------------------------------
# step_batch kernels vs the base-class row-loop oracle
# ----------------------------------------------------------------------
def test_step_batch_kernels_match_row_loop(rng, torus_kind, rule_case):
    topo = TORUS_KINDS[torus_kind](4, 5)
    factory, low, palette, _ = RULE_CASES[rule_case]
    rule = factory()
    batch = _random_batch(rng, topo, low, palette, 16)
    fast = rule.step_batch(batch, topo)
    oracle = Rule.step_batch(rule, batch, topo)
    assert np.array_equal(fast, oracle)


def test_step_batch_on_irregular_padded_graph(rng):
    import networkx as nx

    topo = GraphTopology(nx.path_graph(7))  # padded rows, degrees 1 and 2
    for rule in (
        GeneralizedPluralityRule(4),
        OrderedIncrementRule(3),
        LinearThresholdRule("strong"),
    ):
        palette = getattr(rule, "num_colors", 2)
        batch = _random_batch(rng, topo, 0, palette, 11)
        assert np.array_equal(
            rule.step_batch(batch, topo), Rule.step_batch(rule, batch, topo)
        )


def test_step_batch_out_buffer(rng):
    topo = ToroidalMesh(4, 4)
    rule = SMPRule()
    batch = _random_batch(rng, topo, 0, 4, 8)
    out = np.empty_like(batch)
    res = rule.step_batch(batch, topo, out=out)
    assert res is out
    assert np.array_equal(out, rule.step_batch(batch, topo))


# ----------------------------------------------------------------------
# run_batch vs run_synchronous: the bitwise-equivalence contract
# ----------------------------------------------------------------------
def test_run_batch_matches_run_synchronous(rng, torus_kind, rule_case):
    topo = TORUS_KINDS[torus_kind](4, 5)
    factory, low, palette, target = RULE_CASES[rule_case]
    rule = factory()
    batch = _random_batch(rng, topo, low, palette, 32)
    res = run_batch(topo, batch, rule, max_rounds=120, target_color=target)
    _assert_rows_match(res, topo, batch, rule, target, max_rounds=120)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), b=st.integers(1, 9))
def test_run_batch_matches_run_synchronous_property(seed, b):
    """Seeded sweep over all five registry rules on a small mesh."""
    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(3, 4)
    for name in ("smp", "majority", "strong-majority", "plurality", "ordered",
                 "threshold"):
        rule = make_rule(name, num_colors=3)
        low, palette, target = {
            "majority": (1, 2, 2),
            "threshold": (0, 2, 1),
            "ordered": (0, 3, 2),
        }.get(name, (0, 3, 0))
        batch = _random_batch(rng, topo, low, palette, b)
        res = run_batch(topo, batch, rule, max_rounds=60, target_color=target)
        _assert_rows_match(res, topo, batch, rule, target, max_rounds=60)


def test_run_batch_frozen_matches(rng, torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 4)
    rule = SMPRule()
    frozen = [0, 5, 11]
    batch = _random_batch(rng, topo, 0, 3, 24)
    res = run_batch(
        topo, batch, rule, max_rounds=80, target_color=0, frozen=frozen
    )
    _assert_rows_match(
        res, topo, batch, rule, 0, max_rounds=80, frozen=frozen
    )
    # frozen vertices really are pinned to their per-row initial colors
    assert np.array_equal(res.final[:, frozen], batch[:, frozen])


def test_run_batch_irreversible_matches(rng, torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 4)
    rule = ReverseSimpleMajority("prefer-black")
    batch = _random_batch(rng, topo, 1, 2, 24)
    res = run_batch(
        topo, batch, rule, max_rounds=80, target_color=2, irreversible_color=2
    )
    _assert_rows_match(
        res, topo, batch, rule, 2, max_rounds=80, irreversible_color=2
    )
    # irreversible runs are monotone for that color by construction
    assert res.monotone.all()


def test_run_batch_cycle_detection(rng):
    """Prefer-Black on a 2-2 checkerboard blinks with period 2; the batch
    engine must retire such rows with the detected cycle length."""
    topo = ToroidalMesh(4, 4)
    rule = ReverseSimpleMajority("prefer-black")
    grid = np.indices((4, 4)).sum(axis=0) % 2  # checkerboard
    blink = (grid + 1).astype(np.int32).reshape(-1)  # colors in {1, 2}
    batch = np.stack([blink, np.full(16, 2, dtype=np.int32)])
    res = run_batch(topo, batch, rule, max_rounds=50, target_color=2)
    assert not res.converged[0] and int(res.cycle_length[0]) == 2
    assert res.converged[1] and int(res.cycle_length[1]) == 1
    ref = run_synchronous(topo, blink, rule, max_rounds=50, target_color=2)
    assert ref.cycle_length == 2 and np.array_equal(res.final[0], ref.final)


def test_run_batch_retires_converged_rows_early(rng):
    """A batch mixing instant fixed points with slow rows reports per-row
    rounds, not the batch maximum."""
    from repro.core import theorem2_mesh_dynamo

    con = theorem2_mesh_dynamo(6, 6)
    fixed = np.full(con.topo.num_vertices, con.k, dtype=np.int32)
    batch = np.stack([fixed, con.colors])
    res = run_batch(con.topo, batch, SMPRule(), target_color=con.k)
    assert res.converged.all()
    assert int(res.rounds[0]) == 0
    assert int(res.rounds[1]) > 0
    assert res.k_monochromatic.all()


def test_run_batch_input_not_mutated(rng):
    topo = ToroidalMesh(3, 3)
    batch = _random_batch(rng, topo, 0, 3, 6)
    before = batch.copy()
    run_batch(topo, batch, SMPRule(), max_rounds=20, target_color=0)
    assert np.array_equal(batch, before)


def test_run_batch_row_view(rng):
    topo = ToroidalMesh(4, 4)
    batch = _random_batch(rng, topo, 0, 3, 5)
    res = run_batch(topo, batch, SMPRule(), max_rounds=80, target_color=0)
    one = res.row(2)
    ref = run_synchronous(topo, batch[2], SMPRule(), max_rounds=80, target_color=0)
    assert np.array_equal(one.final, ref.final)
    assert one.rounds == ref.rounds
    assert one.converged == ref.converged
    assert one.cycle_length == ref.cycle_length
    assert one.monotone == ref.monotone


def test_run_batch_fallback_rule_without_kernel(rng):
    """A rule that never overrides step_batch still runs batched."""

    class Stubborn(Rule):
        def step(self, colors, topo, out=None):
            if out is None:
                return colors.copy()
            np.copyto(out, colors)
            return out

        def update_vertex(self, current, neighbor_colors):
            return current

    topo = ToroidalMesh(3, 3)
    batch = _random_batch(rng, topo, 0, 3, 4)
    res = run_batch(topo, batch, Stubborn(), max_rounds=10, target_color=0)
    assert res.converged.all()
    assert (res.rounds == 0).all()
    assert np.array_equal(res.final, batch)


def test_as_color_batch_validation():
    with pytest.raises(ValueError):
        as_color_batch(np.zeros((3,), dtype=np.int32), 3)  # not 2-D
    with pytest.raises(ValueError):
        as_color_batch(np.zeros((2, 4), dtype=np.int32), 3)  # wrong width
    with pytest.raises(ValueError):
        as_color_batch(np.full((2, 3), -1), 3)  # negative colors


def test_k_monochromatic_requires_target(rng):
    topo = ToroidalMesh(3, 3)
    batch = _random_batch(rng, topo, 0, 3, 2)
    res = run_batch(topo, batch, SMPRule(), max_rounds=10)
    assert res.monotone is None
    with pytest.raises(ValueError):
        _ = res.k_monochromatic
