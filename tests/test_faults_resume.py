"""Crash/resume integration tests, driven by the fault-injection harness.

The headline contract (ISSUE acceptance): a census killed after *any*
number of ledger commits, rerun with ``--resume``, produces stdout, a
witness database, and witness ids bitwise-identical to an uninterrupted
run — at one process and at four.  The kill sweep below proves it by
exhaustively killing at every commit boundary, and the satellite tests
cover the crash artifacts (torn tails, duplicate records, stale
dynamics) and worker death inside the pool.
"""

import json

import pytest

from faults import (
    FlakyWorker,
    HarnessKilled,
    kill_after,
    run_cli,
    run_cli_killed,
    tear_tail,
)
from repro.engine.parallel import ShardError, run_sharded
from repro.io.ledger import LedgerScope, RunLedger
from repro.io.witnessdb import WitnessDB


def census_args(workdir, processes):
    """The small census workload every resume test kills and replays.

    Two cells (an exhaustive 3x3 and a random-search 4x4), three random
    shards, witnesses into a db — 8 ledger commits total, so the kill
    sweep crosses shard, cell, and exhaustive-outcome boundaries.
    """
    return [
        "census", "--kinds", "mesh", "--sizes", "3", "4",
        "--trials", "240", "--batch-size", "80", "--shard-size", "80",
        "--seed", "11",
        "--db", str(workdir / "db.jsonl"),
        "--run-ledger", str(workdir / "led.jsonl"),
        "--processes", str(processes),
    ]


def witness_ids(db_path):
    return [rec.id for rec in WitnessDB(db_path)]


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run: (stdout, db bytes, witness ids, commits)."""
    ref = tmp_path_factory.mktemp("reference")
    code, out = run_cli(census_args(ref, processes=1))
    assert code == 0
    led = RunLedger(ref / "led.jsonl")
    (rid,) = led.runs
    assert led.finished(rid)
    return {
        "stdout": out,
        "db": (ref / "db.jsonl").read_bytes(),
        "ids": witness_ids(ref / "db.jsonl"),
        "commits": led.shard_count(rid),
    }


def assert_resumed_bitwise(workdir, reference, processes):
    """Resume in ``workdir`` and compare every artifact to the reference."""
    code, out = run_cli(census_args(workdir, processes) + ["--resume"])
    assert code == 0
    assert out == reference["stdout"]
    assert (workdir / "db.jsonl").read_bytes() == reference["db"]
    assert witness_ids(workdir / "db.jsonl") == reference["ids"]


# ----------------------------------------------------------------------
# the kill sweep: every commit boundary, two process counts
# ----------------------------------------------------------------------
def test_reference_workload_commits(reference):
    # the sweep below must cross more than one cell boundary
    assert reference["commits"] >= 6


@pytest.mark.parametrize("processes", [1, 4])
def test_census_killed_at_every_commit_resumes_bitwise(
    tmp_path, reference, processes
):
    for k in range(reference["commits"] + 1):
        workdir = tmp_path / f"kill-{k}"
        workdir.mkdir()
        if k < reference["commits"]:
            with pytest.raises(HarnessKilled):
                with kill_after(k):
                    run_cli(census_args(workdir, processes))
            led = RunLedger(workdir / "led.jsonl")
            (rid,) = led.runs
            assert led.shard_count(rid) == k
            assert not led.finished(rid)
        else:  # k == commits: the run completes before the kill point
            with kill_after(k):
                code, out = run_cli(census_args(workdir, processes))
            assert code == 0 and out == reference["stdout"]
        assert_resumed_bitwise(workdir, reference, processes)


def test_census_killed_parallel_resumes_serial_bitwise(tmp_path, reference):
    """Cross-process resume: killed at 4 workers, resumed inline."""
    with pytest.raises(HarnessKilled):
        with kill_after(3):
            run_cli(census_args(tmp_path, processes=4))
    assert_resumed_bitwise(tmp_path, reference, processes=1)


def test_census_sigkilled_subprocess_resumes_bitwise(tmp_path, reference):
    """The real thing: a separate process dies via ``os._exit(137)``
    (no cleanup, no flush) mid-census; resume is still bitwise."""
    proc = run_cli_killed(census_args(tmp_path, processes=2), commits=2)
    assert proc.returncode == 137, proc.stderr
    led = RunLedger(tmp_path / "led.jsonl")
    (rid,) = led.runs
    assert led.shard_count(rid) == 2
    assert_resumed_bitwise(tmp_path, reference, processes=4)


# ----------------------------------------------------------------------
# crash artifacts in the ledger file
# ----------------------------------------------------------------------
def test_census_resumes_through_torn_ledger_tail(tmp_path, reference):
    """A crash *during* an append (partial final line) loses only the
    torn record: resume heals the tail, recomputes that shard, and the
    outputs are still bitwise-identical."""
    with pytest.raises(HarnessKilled):
        with kill_after(3):
            run_cli(census_args(tmp_path, processes=1))
    tear_tail(tmp_path / "led.jsonl", drop=9)
    torn = RunLedger(tmp_path / "led.jsonl")
    assert torn.torn_tail is not None and torn.corrupt == []
    (rid,) = torn.runs
    assert torn.shard_count(rid) == 2  # the torn commit is gone
    assert_resumed_bitwise(tmp_path, reference, processes=1)
    healed = RunLedger(tmp_path / "led.jsonl")
    assert healed.torn_tail is None and healed.corrupt == []


def test_census_resume_tolerates_duplicate_shard_record(tmp_path, reference):
    """At-least-once appends are legal: an identical duplicate shard
    line (e.g. a retry that committed twice) replays as one shard."""
    code, _ = run_cli(census_args(tmp_path, processes=1))
    assert code == 0
    path = tmp_path / "led.jsonl"
    lines = path.read_bytes().splitlines(keepends=True)
    shard_lines = [ln for ln in lines if b'"type":"shard"' in ln]
    lines.insert(lines.index(shard_lines[0]) + 1, shard_lines[0])
    path.write_bytes(b"".join(lines))
    dup = RunLedger(path)
    assert dup.corrupt == []
    assert_resumed_bitwise(tmp_path, reference, processes=1)


def test_census_resume_refuses_stale_dynamics(tmp_path, capsys):
    """A ledger recorded under another engine version must not replay:
    the CLI reports the stale run cleanly and exits 2."""
    code, _ = run_cli(census_args(tmp_path, processes=1))
    assert code == 0
    led = RunLedger(tmp_path / "led.jsonl")
    (rid,) = led.runs
    stale_def = led.definition(rid)
    stale_def["dynamics"] = "0-stale-engine"
    stale_path = tmp_path / "stale.jsonl"
    RunLedger(stale_path).begin(stale_def)

    args = census_args(tmp_path, processes=1) + ["--resume"]
    args[args.index(str(tmp_path / "led.jsonl"))] = str(stale_path)
    capsys.readouterr()
    code, out = run_cli(args)
    err = capsys.readouterr().err
    assert code == 2
    assert "0-stale-engine" in err and "fresh ledger" in err


# ----------------------------------------------------------------------
# worker death inside the pool
# ----------------------------------------------------------------------
def _noisy_worker(unit):
    """A pure function of its unit with a per-shard RNG stream."""
    import numpy as np

    seed, index = unit
    rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
    return [index, float(rng.random()), int(rng.integers(0, 1_000_000))]


UNITS = [(17, i) for i in range(6)]


def test_flaky_shards_retry_to_bitwise_identical_results(tmp_path):
    """Every shard fails twice, the bounded retry absorbs it, and the
    retried results are bitwise those of an undisturbed run — the retry
    re-derives the same per-shard SeedSequence, never a fresh stream."""
    expected = [_noisy_worker(u) for u in UNITS]
    for processes in (0, 2):
        counters = tmp_path / f"raise-{processes}"
        counters.mkdir()
        flaky = FlakyWorker(_noisy_worker, counters, fail=2, mode="raise")
        got = run_sharded(flaky, UNITS, processes=processes, max_retries=2)
        assert got == expected


def test_worker_death_breaks_pool_and_recovers_bitwise(tmp_path):
    """A worker process that dies outright (``os._exit``) breaks the
    pool; the engine rebuilds it, retries the shard, and still returns
    bitwise-identical results."""
    expected = [_noisy_worker(u) for u in UNITS]
    flaky = FlakyWorker(_noisy_worker, tmp_path, fail=1, mode="exit")
    got = run_sharded(flaky, UNITS, processes=2, max_retries=2)
    assert got == expected


def test_exhausted_retries_raise_structured_shard_error(tmp_path):
    """Persistent failure surfaces as ShardError naming the ledger key
    of the failing shard and the attempts charged — not a bare worker
    traceback from somewhere inside the pool."""
    led = RunLedger(tmp_path / "led.jsonl")
    rid = led.begin({"experiment": "retry-test", "dynamics": "d1", "seed": 17})
    scope = LedgerScope(led, rid, prefix=("retry",))
    checkpoint = scope.checkpoint(len(UNITS))
    flaky = FlakyWorker(_noisy_worker, tmp_path, fail=10, mode="raise")
    with pytest.raises(ShardError) as exc_info:
        run_sharded(
            flaky, UNITS, processes=0, checkpoint=checkpoint, max_retries=2
        )
    err = exc_info.value
    assert err.key == ["retry", "shard", 0]
    assert err.attempts == 3  # 1 initial + 2 retries
    assert "['retry', 'shard', 0]" in str(err)
    assert led.shard_count(rid) == 0  # nothing bogus was committed


def test_exhausted_retries_without_checkpoint_name_the_index(tmp_path):
    flaky = FlakyWorker(_noisy_worker, tmp_path, fail=10, mode="raise")
    with pytest.raises(ShardError) as exc_info:
        run_sharded(flaky, UNITS, processes=0, max_retries=1)
    assert exc_info.value.key == 0
    assert exc_info.value.attempts == 2


# ----------------------------------------------------------------------
# the witness db shares the crash-safe store
# ----------------------------------------------------------------------
def test_witnessdb_torn_tail_recovers_and_heals(tmp_path):
    path = tmp_path / "db.jsonl"
    code, _ = run_cli(
        ["search", "mesh", "3", "3", "--seed-size", "3", "--colors", "3",
         "--trials", "300", "--seed", "5", "--db", str(path)]
    )
    whole = WitnessDB(path)
    records = len(list(whole))
    assert records >= 1
    tear_tail(path, drop=9)

    torn = WitnessDB(path)
    assert torn.torn_tail is not None
    assert torn.corrupt == []  # a torn tail is a crash artifact, not corruption
    assert len(list(torn)) <= records

    from test_io_witnessdb import _sample_record

    torn.add(_sample_record(provenance={"source": "post-crash"}))
    healed = WitnessDB(path)
    assert healed.torn_tail is None and healed.corrupt == []
    for line in path.read_bytes().splitlines():
        json.loads(line)  # every surviving line is whole again
