"""Temporal (time-varying availability) engine tests."""

import numpy as np
import pytest

from repro.engine import run_synchronous, run_temporal
from repro.rules import GeneralizedPluralityRule, SMPRule
from repro.topology import (
    AlwaysAvailable,
    BernoulliAvailability,
    PeriodicAvailability,
    TemporalTopology,
    ToroidalMesh,
)


def _construction(m=5, n=5):
    from repro.core import theorem2_mesh_dynamo

    return theorem2_mesh_dynamo(m, n)


def test_full_availability_matches_static_run():
    con = _construction()
    palette = max(con.palette) + 1
    ttopo = TemporalTopology(con.topo, AlwaysAvailable())
    rule = GeneralizedPluralityRule(num_colors=palette)
    res_t = run_temporal(ttopo, con.colors, rule, target_color=con.k)
    res_s = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k)
    assert res_t.converged
    assert np.array_equal(res_t.final, res_s.final)
    assert res_t.rounds == res_s.rounds


def test_zero_availability_freezes_everything():
    con = _construction()
    rng = np.random.default_rng(1)
    ttopo = TemporalTopology(con.topo, BernoulliAvailability(0.0, rng))
    rule = GeneralizedPluralityRule(num_colors=max(con.palette) + 1)
    res = run_temporal(ttopo, con.colors, rule, max_rounds=20)
    assert not res.converged
    assert np.array_equal(res.final, con.colors)


def test_partial_availability_still_reaches_monochromatic():
    con = _construction()
    rng = np.random.default_rng(7)
    ttopo = TemporalTopology(con.topo, BernoulliAvailability(0.8, rng))
    rule = GeneralizedPluralityRule(num_colors=max(con.palette) + 1)
    res = run_temporal(ttopo, con.colors, rule, max_rounds=5000, target_color=con.k)
    assert res.converged
    assert res.monochromatic and res.final[0] == con.k


def test_monochromatic_input_is_absorbing():
    topo = ToroidalMesh(4, 4)
    ttopo = TemporalTopology(topo, AlwaysAvailable())
    colors = np.full(16, 2, dtype=np.int32)
    res = run_temporal(ttopo, colors, GeneralizedPluralityRule(num_colors=3))
    assert res.converged and res.rounds == 0


def test_bernoulli_validates_probability():
    with pytest.raises(ValueError):
        BernoulliAvailability(1.5)


def test_bernoulli_mask_is_edge_symmetric(rng):
    topo = ToroidalMesh(4, 5)
    avail = BernoulliAvailability(0.5, rng)
    mask = avail.mask_for_round(topo, 0)
    assert mask.shape == topo.neighbors.shape
    for v in range(topo.num_vertices):
        for s in range(4):
            w = int(topo.neighbors[v, s])
            # find the slot of v in w's row; symmetric availability
            back = [t for t in range(4) if int(topo.neighbors[w, t]) == v]
            assert any(mask[w, t] == mask[v, s] for t in back)


def test_periodic_availability_deterministic_and_cycling():
    topo = ToroidalMesh(3, 3)
    avail = PeriodicAvailability(period=4, duty=2)
    m0 = avail.mask_for_round(topo, 0)
    m4 = avail.mask_for_round(topo, 4)
    assert np.array_equal(m0, m4)
    # duty=period means always on
    full = PeriodicAvailability(period=3, duty=3)
    assert full.mask_for_round(topo, 1).all()


def test_periodic_validates_parameters():
    with pytest.raises(ValueError):
        PeriodicAvailability(period=0, duty=1)
    with pytest.raises(ValueError):
        PeriodicAvailability(period=4, duty=5)


def test_temporal_outcome_helper(rng):
    from repro.ext import run_temporal_dynamo

    con = _construction(4, 4)
    out = run_temporal_dynamo(con, availability=1.0, rng=rng)
    assert out.reached_monochromatic
    assert out.slowdown == pytest.approx(1.0)
    out_low = run_temporal_dynamo(con, availability=0.7, rng=rng, max_rounds=5000)
    if out_low.reached_monochromatic:
        assert out_low.slowdown >= 1.0


# ----------------------------------------------------------------------
# the batched temporal driver (shared mask trace)
# ----------------------------------------------------------------------
def test_temporal_batch_single_row_matches_scalar():
    from repro.engine import run_temporal_batch

    con = _construction()
    rule = GeneralizedPluralityRule(num_colors=max(con.palette) + 1)
    # identically seeded availability processes -> identical mask traces
    scalar = run_temporal(
        TemporalTopology(con.topo, BernoulliAvailability(0.8, np.random.default_rng(7))),
        con.colors, rule, max_rounds=5000, target_color=con.k,
    )
    batched = run_temporal_batch(
        TemporalTopology(con.topo, BernoulliAvailability(0.8, np.random.default_rng(7))),
        con.colors[None, :], rule, max_rounds=5000, target_color=con.k,
    )
    assert np.array_equal(batched.final[0], scalar.final)
    assert int(batched.rounds[0]) == scalar.rounds
    assert bool(batched.converged[0]) == scalar.converged
    assert bool(batched.monotone[0]) == bool(scalar.monotone)


def test_temporal_batch_rows_share_one_trace(rng):
    """Identical rows under the shared trace stay identical; a periodic
    (deterministic) trace reproduces the scalar run for every row."""
    from repro.engine import run_temporal_batch

    con = _construction(4, 4)
    rule = GeneralizedPluralityRule(num_colors=max(con.palette) + 1)
    avail = PeriodicAvailability(period=3, duty=2)
    block = np.tile(con.colors, (5, 1))
    res = run_temporal_batch(
        TemporalTopology(con.topo, avail), block, rule,
        max_rounds=5000, target_color=con.k,
    )
    scalar = run_temporal(
        TemporalTopology(con.topo, avail), con.colors, rule,
        max_rounds=5000, target_color=con.k,
    )
    for i in range(5):
        assert np.array_equal(res.final[i], scalar.final)
        assert int(res.rounds[i]) == scalar.rounds


def test_temporal_batch_monochromatic_rows_retire_immediately(rng):
    from repro.engine import run_temporal_batch

    topo = ToroidalMesh(4, 4)
    ttopo = TemporalTopology(topo, AlwaysAvailable())
    rule = GeneralizedPluralityRule(num_colors=3)
    block = rng.integers(0, 3, size=(4, 16)).astype(np.int32)
    block[1] = 2  # monochromatic from the start
    res = run_temporal_batch(ttopo, block, rule, max_rounds=100)
    assert res.converged[1] and res.rounds[1] == 0
    assert res.cycle_length[1] == 1 and res.fixed_point_round[1] == 0
    assert (res.final[1] == 2).all()


def test_step_masked_batch_validates_mask_shape(rng):
    topo = ToroidalMesh(3, 3)
    rule = GeneralizedPluralityRule(num_colors=3)
    block = rng.integers(0, 3, size=(2, 9)).astype(np.int32)
    with pytest.raises(ValueError, match="does not match the neighbor table"):
        rule.step_masked_batch(block, topo, np.ones((9, 3), dtype=bool))


def test_temporal_batch_dynamo_experiment(rng):
    from repro.ext import run_temporal_dynamo_batch

    con = _construction()
    out = run_temporal_dynamo_batch(con, 1.0, replicas=4, rng=rng, max_rounds=5000)
    assert out.replicas == 4 and out.reached.shape == (4,)
    assert out.reached[0]  # the crafted complement always wins at p = 1
    assert 0.0 <= out.reached_rate <= 1.0
