"""Generalized plurality rule: the arbitrary-degree SMP extension."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import (
    GeneralizedPluralityRule,
    SMPRule,
    ceil_half,
    strong_threshold,
)
from repro.topology import GraphTopology, ToroidalMesh

from helpers import random_coloring


def test_threshold_functions():
    assert ceil_half(4) == 2 and ceil_half(5) == 3 and ceil_half(1) == 1
    assert strong_threshold(4) == 3 and strong_threshold(5) == 3
    deg = np.array([1, 2, 3, 4, 5])
    assert np.array_equal(ceil_half(deg), [1, 1, 2, 2, 3])
    assert np.array_equal(strong_threshold(deg), [1, 2, 2, 3, 3])


def test_invalid_num_colors():
    with pytest.raises(ValueError):
        GeneralizedPluralityRule(0)


def test_rejects_out_of_palette_colors():
    topo = ToroidalMesh(3, 3)
    rule = GeneralizedPluralityRule(num_colors=2)
    with pytest.raises(ValueError):
        rule.step(np.full(9, 5, dtype=np.int32), topo)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), num_colors=st.integers(2, 5))
def test_reduces_to_smp_on_four_regular(seed, num_colors):
    """On degree-4 tori the ceil(d/2) plurality rule IS the SMP rule."""
    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(4, 5)
    colors = rng.integers(0, num_colors, size=topo.num_vertices).astype(np.int32)
    plur = GeneralizedPluralityRule(num_colors=num_colors).step(colors, topo)
    smp = SMPRule().step(colors, topo)
    assert np.array_equal(plur, smp)


def test_step_matches_scalar_oracle_on_irregular_graph(rng):
    g = nx.random_regular_graph(3, 10, seed=7)
    g.add_edge(0, 5)  # perturb regularity
    topo = GraphTopology(g)
    rule = GeneralizedPluralityRule(num_colors=4)
    for _ in range(5):
        colors = random_coloring(topo, 4, rng)
        assert np.array_equal(
            rule.step(colors, topo), rule.step_reference(colors, topo)
        )


def test_star_hub_follows_leaves():
    # hub of a 5-star with 3 leaves of color 1: threshold ceil(5/2)=3 -> adopt
    topo = GraphTopology(nx.star_graph(5))
    colors = np.array([0, 1, 1, 1, 2, 3], dtype=np.int32)
    out = GeneralizedPluralityRule(num_colors=4).step(colors, topo)
    assert out[0] == 1
    # leaves have degree 1, threshold 1: they adopt the hub's color iff it
    # is the unique color reaching 1 (it is — single neighbor)
    assert np.all(out[1:] == colors[0])


def test_tie_on_even_split_keeps():
    topo = GraphTopology(nx.star_graph(4))
    colors = np.array([7, 1, 1, 2, 2], dtype=np.int32)
    out = GeneralizedPluralityRule(num_colors=8).step(colors, topo)
    assert out[0] == 7


def test_degree_zero_vertex_never_changes():
    topo = GraphTopology([(0, 1)], num_vertices=3)  # vertex 2 isolated
    colors = np.array([0, 0, 1], dtype=np.int32)
    out = GeneralizedPluralityRule(num_colors=2).step(colors, topo)
    assert out[2] == 1


def test_strong_threshold_variant_is_stricter(rng):
    topo = ToroidalMesh(4, 4)
    colors = random_coloring(topo, 3, rng)
    simple = GeneralizedPluralityRule(3, ceil_half).step(colors, topo)
    strong = GeneralizedPluralityRule(3, strong_threshold).step(colors, topo)
    strong_changed = strong != colors
    # every strong change is also a simple change with the same outcome
    assert np.array_equal(strong[strong_changed], simple[strong_changed])


def test_masked_step_ignores_masked_neighbors():
    topo = ToroidalMesh(3, 3)
    colors = np.zeros(9, dtype=np.int32)
    colors[4] = 1
    rule = GeneralizedPluralityRule(num_colors=2)
    # mask everything -> nobody hears anything -> nothing changes
    mask = np.zeros_like(topo.neighbors, dtype=bool)
    out = rule.step_masked(colors, topo, mask)
    assert np.array_equal(out, colors)
    # full mask -> the lone 1 is outvoted
    full = np.ones_like(topo.neighbors, dtype=bool)
    out2 = rule.step_masked(colors, topo, full)
    assert out2[4] == 0


def test_scalar_oracle_degree_zero():
    rule = GeneralizedPluralityRule(num_colors=3)
    assert rule.update_vertex(2, []) == 2
