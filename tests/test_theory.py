"""Theory-package tests: the executable claim audit and its verdicts.

These pin the reproduction's final verdict table — if an implementation
change flips any verdict, these tests fail and EXPERIMENTS.md must be
revisited.
"""

import pytest

from repro.theory import (
    ALL_CHECKS,
    ClaimReport,
    Verdict,
    check_lemma1,
    check_lemma2,
    check_lemma3,
    check_proposition1,
    check_proposition2,
    check_proposition3,
    check_theorem1,
    check_theorem2,
    check_theorem3,
    check_theorem4,
    check_theorem5,
    check_theorem6,
    check_theorem7,
    check_theorem8,
    full_report,
    render_markdown,
    render_report,
)

EXPECTED_VERDICTS = {
    "Lemma 1": Verdict.CORRECTED,
    "Lemma 2": Verdict.REFUTED,
    "Lemma 3": Verdict.MATCH,
    "Theorem 1": Verdict.REFUTED,
    "Theorem 2": Verdict.CORRECTED,
    "Theorem 3": Verdict.REFUTED,
    "Theorem 4": Verdict.MATCH,
    "Theorem 5": Verdict.REFUTED,
    "Theorem 6": Verdict.MATCH,
    "Theorem 7": Verdict.CORRECTED,
    "Theorem 8": Verdict.CORRECTED,
    "Proposition 1": Verdict.MATCH,
    "Proposition 2": Verdict.MATCH,
    "Proposition 3": Verdict.CORRECTED,
}


def test_lemma1_per_kind_scoping():
    rep = check_lemma1(trials=15)
    assert rep.verdict is Verdict.CORRECTED
    assert rep.details["violations_by_kind"]["mesh"] == 0
    assert (
        rep.details["violations_by_kind"]["cordalis"] > 0
        or rep.details["violations_by_kind"]["serpentinus"] > 0
    )


def test_lemma2_refuted_by_paper_seed():
    rep = check_lemma2()
    assert rep.verdict is Verdict.REFUTED
    assert rep.details["is_monotone_dynamo"]
    assert not rep.details["seed_is_union_of_blocks"]


def test_lemma3_holds_but_not_tight():
    rep = check_lemma3()
    assert rep.verdict is Verdict.MATCH
    assert "not tight" in rep.note
    assert rep.details["3x3"]["exact_min"] == 7 > rep.details["3x3"]["bound"]


@pytest.mark.parametrize(
    "check,verdict",
    [
        (check_theorem1, Verdict.REFUTED),
        (check_theorem3, Verdict.REFUTED),
        (check_theorem5, Verdict.REFUTED),
    ],
)
def test_bound_theorems_refuted(check, verdict):
    rep = check()
    assert rep.verdict is verdict
    assert rep.details["witness_size"] < rep.details["paper_bound"]


@pytest.mark.parametrize(
    "check,verdict",
    [
        (check_theorem2, Verdict.CORRECTED),
        (check_theorem4, Verdict.MATCH),
        (check_theorem6, Verdict.MATCH),
    ],
)
def test_construction_theorems(check, verdict):
    rep = check()
    assert rep.verdict is verdict
    assert rep.details["conditions"] is True


def test_round_theorems_corrected():
    assert check_theorem7().verdict is Verdict.CORRECTED
    assert check_theorem8().verdict is Verdict.CORRECTED


def test_propositions():
    assert check_proposition1(trials=40).verdict is Verdict.MATCH
    assert check_proposition2(trials=40).verdict is Verdict.MATCH
    rep3 = check_proposition3()
    assert rep3.verdict is Verdict.CORRECTED
    assert rep3.details["min_size_with_2_colors"] is None
    assert rep3.details["min_size_with_4_colors"] == 2


@pytest.mark.slow
def test_full_report_matches_experiments_md():
    reports = full_report()
    assert len(reports) == len(ALL_CHECKS) == 14
    for rep in reports:
        assert rep.verdict is EXPECTED_VERDICTS[rep.claim_id], rep.claim_id


def test_render_report_and_markdown():
    reports = [
        ClaimReport("Theorem X", "a statement", Verdict.MATCH, note="fine"),
        ClaimReport("Theorem Y", "another", Verdict.REFUTED, note="broken"),
    ]
    text = render_report(reports)
    assert "Theorem X" in text and "MATCH" in text
    md = render_markdown(reports)
    assert md.startswith("# Reproduction verdicts")
    assert "| Theorem Y | **REFUTED** | broken |" in md
    assert "## Theorem X" in md
    assert reports[0].ok and not reports[1].ok
    assert reports[0].as_row() == ("Theorem X", "MATCH", "fine")
