"""Unit tests for the benchmark-regression gate (tools/compare_bench.py)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from compare_bench import collect_ratios, compare_ratios, main  # noqa: E402


def _payload(smp_step=2.6, smp_run=2.26, plan=2.5):
    """A miniature BENCH_backends/BENCH_plans-shaped payload."""
    return {
        "workload": {"torus": "mesh 6x6", "batch": 8192, "note": "test"},
        "results": {
            "smp": {
                "reference": {
                    "step_ms_per_round": 19.4,
                    "step_speedup_vs_reference": 1.0,
                },
                "stencil": {
                    "step_ms_per_round": 7.5,
                    "step_speedup_vs_reference": smp_step,
                    "run_batch_speedup_vs_reference": smp_run,
                },
            },
            "plans": {"search_plan_speedup": plan,
                      "search_seconds_plans_on": 0.2},
        },
    }


def test_collect_ratios_finds_only_speedup_leaves():
    ratios = collect_ratios(_payload())
    assert ratios == {
        "results.smp.reference.step_speedup_vs_reference": 1.0,
        "results.smp.stencil.step_speedup_vs_reference": 2.6,
        "results.smp.stencil.run_batch_speedup_vs_reference": 2.26,
        "results.plans.search_plan_speedup": 2.5,
    }
    # raw timings and workload metadata never enter the comparison
    assert not any("_ms" in k or "seconds" in k or "workload." in k
                   for k in ratios)


def test_collect_ratios_walks_lists():
    ratios = collect_ratios({"runs": [{"plan_speedup": 2.0},
                                      {"plan_speedup": 3.0}]})
    assert ratios == {"runs[0].plan_speedup": 2.0, "runs[1].plan_speedup": 3.0}


def test_identical_payloads_pass():
    ratios = collect_ratios(_payload())
    failures, notes = compare_ratios(ratios, ratios)
    assert failures == [] and notes == []


def test_within_tolerance_passes_beyond_fails():
    committed = collect_ratios(_payload(smp_step=2.0))
    ok = collect_ratios(_payload(smp_step=1.5))  # 25% drop < 30%
    failures, _ = compare_ratios(committed, ok)
    assert failures == []
    bad = collect_ratios(_payload(smp_step=1.3))  # 35% drop > 30%
    failures, _ = compare_ratios(committed, bad)
    assert len(failures) == 1
    assert "step_speedup_vs_reference" in failures[0]
    # a tighter tolerance flips the first case too
    failures, _ = compare_ratios(committed, ok, max_slowdown=0.10)
    assert len(failures) == 1


def test_missing_committed_ratio_fails_new_ratio_is_noted():
    committed = collect_ratios(_payload())
    fresh = dict(committed)
    del fresh["results.plans.search_plan_speedup"]
    fresh["results.new.thing_speedup"] = 9.0
    failures, notes = compare_ratios(committed, fresh)
    assert len(failures) == 1 and "missing" in failures[0]
    assert len(notes) == 1 and "no baseline" in notes[0]


def test_compare_ratios_validates_tolerance():
    with pytest.raises(ValueError, match="max_slowdown"):
        compare_ratios({}, {}, max_slowdown=1.5)


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def test_main_exit_codes(tmp_path, capsys):
    committed = _write(tmp_path / "committed.json", _payload())
    fresh_ok = _write(tmp_path / "ok.json", _payload(smp_run=2.0))
    fresh_bad = _write(tmp_path / "bad.json", _payload(plan=0.9))
    assert main([committed, fresh_ok]) == 0
    assert "4/4 recorded ratios" in capsys.readouterr().out
    assert main([committed, fresh_bad]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "search_plan_speedup" in out
    # a generous tolerance lets the same drop through
    assert main([committed, fresh_bad, "--max-slowdown", "0.8"]) == 0


def test_main_rejects_unreadable_and_ratio_free_inputs(tmp_path, capsys):
    committed = _write(tmp_path / "committed.json", _payload())
    assert main([committed, str(tmp_path / "missing.json")]) == 2
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert main([str(broken), committed]) == 2
    empty = _write(tmp_path / "empty.json", {"workload": {"batch": 1}})
    assert main([empty, committed]) == 2
    assert "no recorded ratios" in capsys.readouterr().err


def test_gate_holds_on_the_shipped_baselines():
    """The committed BENCH files must gate against themselves — the CI
    wiring depends on their ratios being discoverable."""
    root = Path(__file__).resolve().parent.parent
    for name in ("BENCH_backends.json", "BENCH_plans.json"):
        ratios = collect_ratios(json.loads((root / name).read_text()))
        assert ratios, name
        failures, notes = compare_ratios(ratios, ratios)
        assert failures == [] and notes == []
