"""Dynamo verification report tests."""

import numpy as np

from repro.core import (
    theorem2_mesh_dynamo,
    theorem4_cordalis_dynamo,
    verify_construction,
    verify_dynamo,
    is_monotone_dynamo,
)
from repro.topology import ToroidalMesh



def test_report_on_known_dynamo():
    con = theorem4_cordalis_dynamo(5, 5)
    rep = verify_construction(con)
    assert rep.is_dynamo and rep.monotone and rep.is_monotone_dynamo
    assert rep.converged and rep.final_monochromatic
    assert rep.rounds == 8
    assert rep.seed_size == 6
    assert not rep.complement_has_non_k_block
    assert rep.conditions.satisfied


def test_report_on_non_dynamo():
    topo = ToroidalMesh(5, 5)
    colors = np.zeros(25, dtype=np.int32)
    colors[0] = 1  # a lone k vertex cannot take over
    rep = verify_dynamo(topo, colors, k=1)
    assert not rep.is_dynamo
    assert rep.seed_size == 1


def test_bounding_extents_reported():
    con = theorem2_mesh_dynamo(6, 7)
    rep = verify_construction(con)
    # Theorem 1(i): a monotone dynamo must have extents >= (m-1, n-1)
    assert rep.bounding_extents[0] >= 5 and rep.bounding_extents[1] >= 6


def test_theorem1_bounding_box_necessity(torus_kind):
    """Any verified monotone dynamo satisfies Theorem 1(i)'s box bound."""
    from repro.core import build_minimum_dynamo

    con = build_minimum_dynamo(torus_kind, 6, 6)
    rep = verify_construction(con)
    assert rep.is_monotone_dynamo
    if torus_kind == "mesh":
        assert rep.bounding_extents[0] >= 5
        assert rep.bounding_extents[1] >= 5


def test_conditions_can_be_skipped():
    con = theorem2_mesh_dynamo(5, 5)
    rep = verify_construction(con, check_conditions=False)
    assert rep.conditions is None
    assert rep.is_monotone_dynamo


def test_non_k_block_flagged():
    topo = ToroidalMesh(6, 6)
    colors = np.full(36, 1, dtype=np.int32)
    colors.reshape(6, 6)[2:4, :] = 2
    rep = verify_dynamo(topo, colors, k=1)
    assert rep.complement_has_non_k_block
    assert not rep.is_dynamo


def test_is_monotone_dynamo_fast_path(torus_kind):
    from repro.core import build_minimum_dynamo

    con = build_minimum_dynamo(torus_kind, 5, 5)
    assert is_monotone_dynamo(con.topo, con.colors, con.k)
    bad = con.colors.copy()
    bad[~con.seed] = int(bad[~con.seed][0])  # monochromatic complement ties
    assert not is_monotone_dynamo(con.topo, bad, con.k)


def test_custom_rule_passthrough():
    from repro.rules import ReverseStrongMajority

    con = theorem2_mesh_dynamo(5, 5)
    rep = verify_construction(con, rule=ReverseStrongMajority())
    # strong majority can't propagate from the thin cross: not a dynamo
    assert not rep.is_dynamo
