"""SMP rule tests, including the exhaustive equivalence proof of the
normalized rule against the paper's literal Algorithm 1."""

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import SMPRule, smp_literal_update, unique_plurality_color
from repro.topology import ToroidalMesh, TorusCordalis

from helpers import TORUS_KINDS, random_coloring


# ----------------------------------------------------------------------
# Scalar semantics
# ----------------------------------------------------------------------
def test_all_four_equal_adopts():
    assert SMPRule().update_vertex(0, [7, 7, 7, 7]) == 7


def test_three_of_a_kind_adopts():
    assert SMPRule().update_vertex(0, [5, 5, 5, 9]) == 5


def test_pair_plus_two_distinct_adopts():
    assert SMPRule().update_vertex(0, [3, 4, 3, 9]) == 3


def test_two_two_tie_keeps_current():
    # the paper's deliberate departure from Prefer-Black ([15])
    assert SMPRule().update_vertex(42, [1, 1, 2, 2]) == 42


def test_all_distinct_keeps_current():
    assert SMPRule().update_vertex(42, [1, 2, 3, 4]) == 42


def test_own_color_pair_readopts_own():
    # a vertex whose own color wins the plurality stays put
    assert SMPRule().update_vertex(5, [5, 5, 1, 2]) == 5


def test_requires_degree_four():
    with pytest.raises(ValueError):
        SMPRule().update_vertex(0, [1, 2, 3])


def test_unique_plurality_helper():
    assert unique_plurality_color([1, 1, 2, 3]) == 1
    assert unique_plurality_color([1, 1, 2, 2]) is None
    assert unique_plurality_color([1, 2, 3, 4]) is None
    assert unique_plurality_color([1, 1, 1, 1], threshold=3) == 1
    assert unique_plurality_color([1, 1, 2], threshold=1) is None  # all reach 1


def test_exhaustive_equivalence_with_literal_algorithm1():
    """Normalized rule == literal Algorithm 1 over *every* neighborhood
    multiset with five colors and every current color — the equivalence
    claimed in repro.rules.smp's docstring, machine-checked."""
    rule = SMPRule()
    for nb in product(range(5), repeat=4):
        for cur in range(5):
            assert rule.update_vertex(cur, list(nb)) == smp_literal_update(
                cur, list(nb)
            ), (cur, nb)


# ----------------------------------------------------------------------
# Vectorized kernel == scalar oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(TORUS_KINDS))
@pytest.mark.parametrize("num_colors", [2, 3, 5])
def test_step_matches_reference(kind, num_colors, rng):
    topo = TORUS_KINDS[kind](5, 6)
    rule = SMPRule()
    for _ in range(5):
        colors = random_coloring(topo, num_colors, rng)
        assert np.array_equal(
            rule.step(colors, topo), rule.step_reference(colors, topo)
        )


@settings(max_examples=30, deadline=None)
@given(
    data=st.data(),
    m=st.integers(3, 6),
    n=st.integers(3, 6),
    num_colors=st.integers(2, 6),
)
def test_step_matches_reference_property(data, m, n, num_colors):
    topo = ToroidalMesh(m, n)
    colors = np.asarray(
        data.draw(
            st.lists(
                st.integers(0, num_colors - 1),
                min_size=topo.num_vertices,
                max_size=topo.num_vertices,
            )
        ),
        dtype=np.int32,
    )
    rule = SMPRule()
    assert np.array_equal(rule.step(colors, topo), rule.step_reference(colors, topo))


def test_step_out_buffer(rng):
    topo = ToroidalMesh(4, 4)
    rule = SMPRule()
    colors = random_coloring(topo, 3, rng)
    out = np.empty_like(colors)
    res = rule.step(colors, topo, out=out)
    assert res is out
    assert np.array_equal(out, rule.step(colors, topo))


def test_step_does_not_mutate_input(rng):
    topo = ToroidalMesh(4, 4)
    colors = random_coloring(topo, 3, rng)
    before = colors.copy()
    SMPRule().step(colors, topo)
    assert np.array_equal(colors, before)


def test_step_rejects_irregular_topology():
    import networkx as nx

    from repro.topology import GraphTopology

    star = GraphTopology(nx.star_graph(5))
    with pytest.raises(ValueError):
        SMPRule().step(np.zeros(6, dtype=np.int32), star)


# ----------------------------------------------------------------------
# Semantic invariants
# ----------------------------------------------------------------------
def test_monochromatic_is_fixed_point(torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 5)
    colors = np.full(topo.num_vertices, 3, dtype=np.int32)
    assert np.array_equal(SMPRule().step(colors, topo), colors)


@settings(max_examples=20, deadline=None)
@given(perm_seed=st.integers(0, 2**31 - 1), cfg_seed=st.integers(0, 2**31 - 1))
def test_color_permutation_equivariance(perm_seed, cfg_seed):
    """Relabeling colors commutes with the SMP step (the rule never
    privileges a color — unlike Prefer-Black)."""
    topo = TorusCordalis(4, 5)
    rng = np.random.default_rng(cfg_seed)
    colors = rng.integers(0, 5, size=topo.num_vertices).astype(np.int32)
    perm = np.random.default_rng(perm_seed).permutation(5).astype(np.int32)
    rule = SMPRule()
    assert np.array_equal(
        rule.step(perm[colors], topo), perm[rule.step(colors, topo)]
    )


def test_translation_equivariance(rng):
    """Toroidal translation symmetry: shifting the grid commutes with the
    step (the torus is vertex-transitive)."""
    topo = ToroidalMesh(5, 6)
    colors = random_coloring(topo, 4, rng)
    rule = SMPRule()
    grid = topo.to_grid(colors)
    shifted = np.roll(np.roll(grid, 2, axis=0), 3, axis=1)
    stepped_then_shifted = np.roll(
        np.roll(topo.to_grid(rule.step(colors, topo)), 2, axis=0), 3, axis=1
    )
    shifted_then_stepped = topo.to_grid(
        rule.step(topo.from_grid(shifted).astype(np.int32), topo)
    )
    assert np.array_equal(stepped_then_shifted, shifted_then_stepped)
