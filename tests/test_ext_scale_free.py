"""Scale-free extension tests (the paper's future-work experiment)."""

import numpy as np
import pytest

from repro.ext import (
    barabasi_albert_topology,
    run_scale_free_experiment,
    seed_vertices,
)


def test_ba_topology_structure(rng):
    topo = barabasi_albert_topology(100, 2, rng)
    assert topo.num_vertices == 100
    topo.validate()
    # BA(n, 2): (n - 2) * 2 edges... networkx gives (n - m) * m
    assert topo.num_edges() == 98 * 2
    # heavy tail: the max degree well above the mean
    assert topo.degrees.max() >= 3 * topo.degrees.mean()


def test_seed_strategies(rng):
    topo = barabasi_albert_topology(60, 2, rng)
    hubs = seed_vertices(topo, 5, "hubs", rng)
    assert len(hubs) == 5
    top5 = np.sort(topo.degrees[hubs])
    rest = np.sort(topo.degrees[np.setdiff1d(np.arange(60), hubs)])
    assert top5[0] >= rest[-1]  # hubs really are the top degrees
    rand = seed_vertices(topo, 5, "random", rng)
    assert len(set(int(v) for v in rand)) == 5
    weighted = seed_vertices(topo, 5, "degree-weighted", rng)
    assert len(set(int(v) for v in weighted)) == 5
    with pytest.raises(ValueError):
        seed_vertices(topo, 5, "psychic", rng)


def test_experiment_runs_and_reports(rng):
    out = run_scale_free_experiment(
        n=150, seed_fraction=0.1, strategy="hubs", rng=rng, max_rounds=200
    )
    assert out.num_vertices == 150
    assert out.seed_size == 15
    assert 0.0 <= out.final_k_fraction <= 1.0
    assert out.strategy == "hubs"


def test_hub_seeding_beats_random_on_average():
    """The scale-free headline: hub seeds convert more of the graph than
    equally-sized random seeds (averaged over instances)."""
    hub_total, rand_total = 0.0, 0.0
    for s in range(6):
        rng = np.random.default_rng(100 + s)
        hub_total += run_scale_free_experiment(
            n=200, seed_fraction=0.05, strategy="hubs", rng=rng
        ).final_k_fraction
        rng = np.random.default_rng(100 + s)
        rand_total += run_scale_free_experiment(
            n=200, seed_fraction=0.05, strategy="random", rng=rng
        ).final_k_fraction
    assert hub_total > rand_total
