"""Scale-free extension tests (the paper's future-work experiment)."""

import numpy as np
import pytest

from repro.ext import (
    barabasi_albert_topology,
    run_scale_free_experiment,
    seed_vertices,
)


def test_ba_topology_structure(rng):
    topo = barabasi_albert_topology(100, 2, rng)
    assert topo.num_vertices == 100
    topo.validate()
    # BA(n, 2): (n - 2) * 2 edges... networkx gives (n - m) * m
    assert topo.num_edges() == 98 * 2
    # heavy tail: the max degree well above the mean
    assert topo.degrees.max() >= 3 * topo.degrees.mean()


def test_seed_strategies(rng):
    topo = barabasi_albert_topology(60, 2, rng)
    hubs = seed_vertices(topo, 5, "hubs", rng)
    assert len(hubs) == 5
    top5 = np.sort(topo.degrees[hubs])
    rest = np.sort(topo.degrees[np.setdiff1d(np.arange(60), hubs)])
    assert top5[0] >= rest[-1]  # hubs really are the top degrees
    rand = seed_vertices(topo, 5, "random", rng)
    assert len(set(int(v) for v in rand)) == 5
    weighted = seed_vertices(topo, 5, "degree-weighted", rng)
    assert len(set(int(v) for v in weighted)) == 5
    with pytest.raises(ValueError):
        seed_vertices(topo, 5, "psychic", rng)


def test_experiment_runs_and_reports(rng):
    out = run_scale_free_experiment(
        n=150, seed_fraction=0.1, strategy="hubs", rng=rng, max_rounds=200
    )
    assert out.num_vertices == 150
    assert out.seed_size == 15
    assert 0.0 <= out.final_k_fraction <= 1.0
    assert out.strategy == "hubs"


def test_hub_seeding_beats_random_on_average():
    """The scale-free headline: hub seeds convert more of the graph than
    equally-sized random seeds (averaged over instances)."""
    hub_total, rand_total = 0.0, 0.0
    for s in range(6):
        rng = np.random.default_rng(100 + s)
        hub_total += run_scale_free_experiment(
            n=200, seed_fraction=0.05, strategy="hubs", rng=rng
        ).final_k_fraction
        rng = np.random.default_rng(100 + s)
        rand_total += run_scale_free_experiment(
            n=200, seed_fraction=0.05, strategy="random", rng=rng
        ).final_k_fraction
    assert hub_total > rand_total


# ----------------------------------------------------------------------
# the batched rewiring: bitwise pins and the sharded census
# ----------------------------------------------------------------------
def test_experiment_bitwise_matches_prerefactor_scalar_path():
    """run_scale_free_experiment now executes through run_batch; at a
    fixed seed it must reproduce the historical scalar run_synchronous
    path bit for bit, on the default and stencil backends, with the
    plan cache warm."""
    from repro.engine import clear_plan_cache, plan_cache_stats, run_synchronous
    from repro.rules import GeneralizedPluralityRule

    n, num_colors, frac, strategy = 150, 4, 0.05, "degree-weighted"
    # the historical implementation, hand-rolled: same rng draw order
    rng = np.random.default_rng(0x5EED5)
    topo = barabasi_albert_topology(n, 2, rng)
    k = 0
    others = np.arange(1, num_colors)
    colors = others[rng.integers(0, others.size, size=topo.num_vertices)].astype(
        np.int32
    )
    seeds = seed_vertices(topo, max(1, int(round(frac * n))), strategy, rng)
    colors[seeds] = k
    legacy = run_synchronous(
        topo, colors, GeneralizedPluralityRule(num_colors=num_colors),
        max_rounds=400, target_color=k,
    )
    clear_plan_cache()
    try:
        for backend in (None, "stencil", "reference"):
            out = run_scale_free_experiment(
                n=n, seed_fraction=frac, strategy=strategy,
                rng=np.random.default_rng(0x5EED5), backend=backend,
            )
            assert out.rounds == legacy.rounds, backend
            assert out.converged == legacy.converged, backend
            assert out.final_k_fraction == float((legacy.final == k).mean())
            assert out.monochromatic == bool(
                legacy.converged and (legacy.final == legacy.final[0]).all()
            )
        assert plan_cache_stats().misses >= 1  # batched path compiled a stepper
    finally:
        clear_plan_cache()


def test_census_bitwise_identical_at_any_process_count():
    from repro.ext import scale_free_takeover_census

    kwargs = dict(n=60, graphs=2, replicas=8, seed_fractions=(0.05,),
                  strategies=("hubs", "random"), seed=17)
    inline = scale_free_takeover_census(processes=0, **kwargs)
    pooled = scale_free_takeover_census(processes=2, **kwargs)
    assert inline.cells == pooled.cells


def test_census_backend_invariant():
    from repro.ext import scale_free_takeover_census

    kwargs = dict(n=60, graphs=2, replicas=8, seed_fractions=(0.05,),
                  strategies=("hubs",), seed=17)
    assert (scale_free_takeover_census(backend="reference", **kwargs).cells
            == scale_free_takeover_census(backend="stencil", **kwargs).cells)


def test_census_db_cache_round_trip(tmp_path):
    from repro.ext import scale_free_takeover_census
    from repro.io import WitnessDB

    path = tmp_path / "w.jsonl"
    kwargs = dict(n=60, graphs=2, replicas=8, seed_fractions=(0.05, 0.1),
                  strategies=("hubs",), seed=17)
    stats = {}
    first = scale_free_takeover_census(db=WitnessDB(path), stats=stats, **kwargs)
    assert stats == {"cells": 2, "cache_hits": 0, "recorded": 2}
    stats = {}
    second = scale_free_takeover_census(db=WitnessDB(path), stats=stats, **kwargs)
    assert stats == {"cells": 2, "cache_hits": 2, "recorded": 0}
    assert all(c.from_cache for c in second.cells)
    for a, b in zip(first.cells, second.cells):
        assert a.as_row() == b.as_row()
    # a different definition key misses the cache
    stats = {}
    scale_free_takeover_census(
        db=WitnessDB(path), stats=stats,
        **{**kwargs, "seed": 18},
    )
    assert stats["cache_hits"] == 0 and stats["recorded"] == 2


def test_census_validates_inputs():
    from repro.ext import scale_free_takeover_census

    with pytest.raises(ValueError, match="unknown strategy"):
        scale_free_takeover_census(n=20, strategies=("psychic",))
    with pytest.raises(ValueError, match="at least 2 colors"):
        scale_free_takeover_census(n=20, num_colors=1)
    with pytest.raises(ValueError, match="must be"):
        scale_free_takeover_census(n=0)
