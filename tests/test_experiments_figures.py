"""Figure reproduction tests — the paper's printed artifacts, diffed."""

import numpy as np

from repro.experiments import (
    FIG5_EXPECTED,
    FIG6_EXPECTED,
    figure1_minimum_dynamo,
    figure2_theorem2_coloring,
    figure3_bad_complement,
    figure4_frozen_configuration,
    figure5_mesh_time_matrix,
    figure6_cordalis_time_matrix,
    find_frozen_completion,
)


def test_figure1_reproduces():
    res = figure1_minimum_dynamo()  # the paper's 9x9, 16 black nodes
    assert res.matches_paper
    assert res.construction.seed_size == 16
    assert res.artifact.sum() == 16


def test_figure2_reproduces():
    res = figure2_theorem2_coloring()
    assert res.matches_paper
    assert res.report.conditions.satisfied
    assert res.artifact.shape == (9, 9)


def test_figure3_same_seed_fails_with_bad_complement():
    res = figure3_bad_complement()
    assert res.matches_paper
    assert not res.report.is_dynamo
    # the seed shape/size is still the minimum-dynamo one
    assert res.construction.seed_size == 8


def test_figure4_totally_frozen():
    res = figure4_frozen_configuration()
    assert res.matches_paper
    assert not res.report.is_dynamo
    assert "round 0" in res.notes


def test_figure4_completion_is_genuinely_frozen():
    colors = find_frozen_completion(5, 5)
    assert colors is not None
    from repro.engine import run_synchronous
    from repro.rules import SMPRule
    from repro.topology import ToroidalMesh

    topo = ToroidalMesh(5, 5)
    res = run_synchronous(topo, colors, SMPRule())
    assert res.converged and res.fixed_point_round == 0


def test_figure5_matrix_matches_paper_exactly():
    res = figure5_mesh_time_matrix()
    assert res.matches_paper is True
    assert np.array_equal(res.artifact, FIG5_EXPECTED)
    assert int(res.artifact.max()) == 3  # Theorem 7's value for 5x5


def test_figure6_matrix_matches_paper_exactly():
    res = figure6_cordalis_time_matrix()
    assert res.matches_paper is True
    assert np.array_equal(res.artifact, FIG6_EXPECTED)
    assert int(res.artifact.max()) == 8  # Theorem 8's value for 5x5


def test_figure5_other_sizes_dont_claim_paper_match():
    res = figure5_mesh_time_matrix(7, 7)
    assert res.matches_paper is None
    assert res.artifact.shape == (7, 7)
    assert int(res.artifact.max()) == 5


def test_figure_matrices_symmetry():
    """Figure 5's matrix has the mesh's diagonal symmetry; in Figure 6 the
    two row-chain waves are mirror images one round apart (row m-1 read
    backwards is row 1 shifted by one round) — both visible in the paper's
    printed matrices."""
    f5 = figure5_mesh_time_matrix().artifact
    assert np.array_equal(f5, f5.T)
    f6 = figure6_cordalis_time_matrix().artifact
    assert np.array_equal(f6[4, ::-1], f6[1] + 1)
