"""Irreversible dynamos, bootstrap domination, and the floor results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CACHED_FLOOR_WITNESSES,
    bootstrap_closure,
    bootstrap_percolates,
    floor_dynamo,
    floor_size,
    is_monotone_dynamo,
    min_bootstrap_percolating_size,
    run_irreversible,
    theorem2_mesh_dynamo,
    verify_floor_witnesses,
)
from repro.engine import run_synchronous
from repro.rules import SMPRule
from repro.topology import OpenMesh, ToroidalMesh

from helpers import TORUS_KINDS


# ----------------------------------------------------------------------
# Irreversible runs
# ----------------------------------------------------------------------
def test_irreversible_is_monotone_by_construction(rng):
    topo = ToroidalMesh(5, 5)
    for _ in range(5):
        colors = rng.integers(0, 4, size=25).astype(np.int32)
        res = run_irreversible(topo, colors, k=0)
        assert res.monotone is True


def test_irreversible_dominates_reversible_k_set(rng):
    """Freezing k can only help k: the irreversible final k-set contains
    the reversible one whenever the reversible run is itself monotone."""
    con = theorem2_mesh_dynamo(6, 6)
    rev = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k)
    irr = run_irreversible(con.topo, con.colors, con.k)
    assert rev.monotone and irr.converged
    assert np.all((irr.final == con.k) | ~(rev.final == con.k))


def test_irreversible_rescues_eroding_seed():
    """The phi-collapsed configuration erodes under free SMP; with k
    absorbing the same configuration keeps every seed vertex."""
    from repro.core import phi_collapse
    from repro.rules.majority import BLACK

    con = theorem2_mesh_dynamo(6, 6)
    bi = phi_collapse(con.colors, con.k)
    free = run_synchronous(con.topo, bi, SMPRule(), target_color=BLACK)
    assert free.monotone is False
    irr = run_synchronous(
        con.topo, bi, SMPRule(), target_color=BLACK, irreversible_color=BLACK
    )
    assert irr.monotone is True
    assert np.all(irr.final[bi == BLACK] == BLACK)


# ----------------------------------------------------------------------
# Bootstrap domination
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_smp_growth_dominated_by_bootstrap(seed):
    """Every vertex that ever becomes k lies in the 2-bootstrap closure of
    the initial k-set — the bridge behind the floor results."""
    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(5, 5)
    colors = rng.integers(0, 4, size=25).astype(np.int32)
    closure = bootstrap_closure(topo, colors == 0)
    res = run_synchronous(topo, colors, SMPRule(), record=True, max_rounds=60)
    ever_k = np.zeros(25, dtype=bool)
    for state in res.trajectory:
        ever_k |= state == 0
    assert np.all(closure | ~ever_k)


def test_bootstrap_closure_basics(torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 4)
    # a 2x2 square is bootstrap-stable but on a 4x4 torus it percolates
    # diagonally via wraparound only when threshold allows; just check
    # monotonicity of the closure operator
    seed = np.zeros(16, dtype=bool)
    seed[:4] = True  # one full row
    closure_row = bootstrap_closure(topo, seed)
    seed2 = seed.copy()
    seed2[5] = True
    closure_bigger = bootstrap_closure(topo, seed2)
    assert np.all(closure_bigger | ~closure_row)  # monotone operator
    assert closure_row.sum() >= 4


def test_full_seed_percolates(torus_kind):
    topo = TORUS_KINDS[torus_kind](3, 3)
    assert bootstrap_percolates(topo, np.arange(9))


# ----------------------------------------------------------------------
# Floors
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,expected", [(3, 2), (4, 3), (5, 4)])
def test_torus_bootstrap_floor_exact(n, expected):
    size, witness = min_bootstrap_percolating_size(
        ToroidalMesh(n, n), max_size=n
    )
    assert size == expected == floor_size(n)
    assert bootstrap_percolates(ToroidalMesh(n, n), witness)


@pytest.mark.parametrize("n", [3, 4])
def test_open_mesh_floor_is_n(n):
    """Without wraparound the classic perimeter bound holds: the open
    n x n grid needs n seeds (the torus needs only n - 1)."""
    size, _ = min_bootstrap_percolating_size(OpenMesh(n, n), max_size=n)
    assert size == n


def test_open_mesh_diagonal_is_classic_minimum():
    om = OpenMesh(5, 5)
    diag = [om.vertex_index(i, i) for i in range(5)]
    assert bootstrap_percolates(om, np.asarray(diag))
    assert not bootstrap_percolates(om, np.asarray(diag[:4]))


def test_floor_witnesses_verify():
    assert verify_floor_witnesses()


@pytest.mark.parametrize("n", sorted(CACHED_FLOOR_WITNESSES))
def test_floor_dynamo_constructions(n):
    con = floor_dynamo(n)
    assert con is not None
    assert con.seed_size == n - 1 < con.size_lower_bound
    assert is_monotone_dynamo(con.topo, con.colors, con.k)
    assert con.num_colors <= 4


def test_floor_dynamo_unknown_size():
    assert floor_dynamo(9) is None
    with pytest.raises(ValueError):
        floor_size(2)


def test_no_smp_dynamo_below_floor():
    """Soundness of the floor as a bound: on the 4x4 no seed of size 2
    even bootstrap-percolates, so no SMP dynamo of size 2 can exist."""
    from itertools import combinations

    topo = ToroidalMesh(4, 4)
    assert all(
        not bootstrap_percolates(topo, np.asarray(s))
        for s in combinations(range(16), 2)
    )
