"""Bi-colored baseline rules of [15]: reverse simple/strong majority."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import (
    BLACK,
    WHITE,
    ReverseSimpleMajority,
    ReverseStrongMajority,
    SMPRule,
)
from repro.topology import ToroidalMesh

from helpers import TORUS_KINDS


# ----------------------------------------------------------------------
# Prefer-Black simple majority
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "blacks,expected",
    [(0, WHITE), (1, WHITE), (2, BLACK), (3, BLACK), (4, BLACK)],
)
def test_prefer_black_thresholds(blacks, expected):
    rule = ReverseSimpleMajority("prefer-black")
    nb = [BLACK] * blacks + [WHITE] * (4 - blacks)
    assert rule.update_vertex(WHITE, nb) == expected
    assert rule.update_vertex(BLACK, nb) == expected  # current is ignored


@pytest.mark.parametrize(
    "blacks,current,expected",
    [
        (0, BLACK, WHITE),
        (1, BLACK, WHITE),
        (2, BLACK, BLACK),  # tie keeps current
        (2, WHITE, WHITE),
        (3, WHITE, BLACK),
        (4, WHITE, BLACK),
    ],
)
def test_prefer_current_thresholds(blacks, current, expected):
    rule = ReverseSimpleMajority("prefer-current")
    nb = [BLACK] * blacks + [WHITE] * (4 - blacks)
    assert rule.update_vertex(current, nb) == expected


def test_unknown_tie_policy_rejected():
    with pytest.raises(ValueError):
        ReverseSimpleMajority("prefer-pink")


def test_pb_differs_from_smp_on_two_two():
    """Remark 1's point: SMP restricted to two colors is *not* the PB rule."""
    nb = [BLACK, BLACK, WHITE, WHITE]
    assert ReverseSimpleMajority("prefer-black").update_vertex(WHITE, nb) == BLACK
    assert SMPRule().update_vertex(WHITE, nb) == WHITE


def test_bicolor_rules_reject_multicolor_input():
    topo = ToroidalMesh(3, 3)
    colors = np.full(9, 5, dtype=np.int32)
    with pytest.raises(ValueError):
        ReverseSimpleMajority().step(colors, topo)


@pytest.mark.parametrize("tie", ["prefer-black", "prefer-current"])
def test_simple_majority_step_matches_reference(tie, rng, torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 5)
    rule = ReverseSimpleMajority(tie)
    for _ in range(5):
        colors = rng.integers(1, 3, size=topo.num_vertices).astype(np.int32)
        assert np.array_equal(
            rule.step(colors, topo), rule.step_reference(colors, topo)
        )


def test_pb_oscillation_exists():
    """PB dynamics can cycle: a bi-colored 4x4 checkerboard alternates
    between its two phases forever (every vertex always has a 2-2 split...
    actually a checkerboard gives every vertex 4 opposite-colored
    neighbors, so PB sends everything to the *other* color iff it is
    black-majority; construct the classic blinker instead)."""
    from repro.engine import run_synchronous

    topo = ToroidalMesh(4, 4)
    grid = np.full((4, 4), WHITE, dtype=np.int32)
    grid[0, :] = BLACK  # a single black row: every vertex sees 2-2 or rows
    colors = grid.reshape(-1)
    res = run_synchronous(topo, colors, ReverseSimpleMajority("prefer-black"))
    # under PB the all-tie frontier rows flip black, the old row stays ->
    # the dynamics must either converge to all-black or cycle; either way
    # the engine must terminate and report what happened
    assert res.converged or (res.cycle_length or 0) >= 1


# ----------------------------------------------------------------------
# Strong majority
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "nb,current,expected",
    [
        ([1, 1, 1, 2], 9, 1),
        ([2, 1, 1, 1], 9, 1),
        ([1, 1, 1, 1], 9, 1),
        ([1, 1, 2, 2], 9, 9),
        ([1, 1, 2, 3], 9, 9),  # simple-majority pair is NOT enough
        ([1, 2, 3, 4], 9, 9),
    ],
)
def test_strong_majority_scalar(nb, current, expected):
    assert ReverseStrongMajority().update_vertex(current, nb) == expected


def test_strong_majority_step_matches_reference(rng, torus_kind):
    topo = TORUS_KINDS[torus_kind](5, 4)
    rule = ReverseStrongMajority()
    for _ in range(5):
        colors = rng.integers(0, 4, size=topo.num_vertices).astype(np.int32)
        assert np.array_equal(
            rule.step(colors, topo), rule.step_reference(colors, topo)
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_strong_majority_more_conservative_than_smp(seed):
    """Proposition 2's item b): whenever strong majority recolors a vertex,
    SMP recolors it identically (strong is more restrictive)."""
    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(4, 5)
    colors = rng.integers(0, 4, size=topo.num_vertices).astype(np.int32)
    strong = ReverseStrongMajority().step(colors, topo)
    smp = SMPRule().step(colors, topo)
    changed = strong != colors
    assert np.array_equal(strong[changed], smp[changed])


def test_strong_majority_rejects_irregular():
    import networkx as nx

    from repro.topology import GraphTopology

    with pytest.raises(ValueError):
        ReverseStrongMajority().step(
            np.zeros(4, dtype=np.int32), GraphTopology(nx.path_graph(4))
        )
