"""Reusable fault-injection harness for crash-safety tests.

The run-ledger contract ("a killed run resumed with ``--resume`` is
bitwise-identical to an uninterrupted one") is only worth anything if
tests can *kill* runs at every interesting boundary.  This module owns
the killing:

* :func:`kill_after` — die immediately before ledger commit ``n + 1``,
  either by raising :class:`HarnessKilled` (in-process tests) or via
  ``os._exit(137)`` (the ``kill -9`` analogue: no cleanup, no atexit,
  buffered stdout lost).
* :func:`run_cli_killed` — run the real CLI in a subprocess wired to die
  the same way, for end-to-end crash/resume tests.
* :func:`tear_tail` — chop bytes off a JSON-lines file's final line,
  simulating a crash *during* an append rather than between appends.
* :class:`FlakyWorker` — a picklable worker wrapper that fails the first
  ``fail`` attempts of every shard (by raising, or by killing its own
  worker process), with file-based attempt counters that survive fork.
* :func:`run_cli` — in-process CLI runner capturing stdout for the
  byte-comparisons the resume tests are built on.

Import from test modules as ``from faults import ...`` (the tests
directory is on ``sys.path`` under pytest's default import mode).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import subprocess
import sys
from contextlib import contextmanager, redirect_stdout
from pathlib import Path
from typing import Iterable, Tuple

from repro.io.ledger import RunLedger

__all__ = [
    "HarnessKilled",
    "FlakyWorker",
    "kill_after",
    "run_cli",
    "run_cli_killed",
    "tear_tail",
]

_TESTS_DIR = Path(__file__).resolve().parent
_SRC_DIR = _TESTS_DIR.parent / "src"


class HarnessKilled(BaseException):
    """The simulated crash raised by :func:`kill_after`.

    Derives from ``BaseException`` so no retry loop or broad
    ``except Exception`` in driver code can swallow it — a real
    ``kill -9`` is not catchable either.
    """


@contextmanager
def kill_after(commits: int, *, mode: str = "raise"):
    """Let ``commits`` ledger commits succeed, then die at the next one.

    Patches :meth:`RunLedger.record_shard` for the duration of the
    block: the first ``commits`` calls commit durably as usual; the
    call after that dies *before* touching the file, exactly like a
    process killed between appends.  ``commits=0`` dies at the very
    first commit.

    ``mode="raise"`` raises :class:`HarnessKilled` (in-process tests
    assert against the ledger state afterwards); ``mode="exit"`` calls
    ``os._exit(137)`` — the ``kill -9`` analogue for subprocess tests.
    Yields a dict whose ``"committed"`` entry counts successful commits.
    """
    if mode not in ("raise", "exit"):
        raise ValueError(f"unknown kill mode {mode!r}")
    original = RunLedger.record_shard
    state = {"committed": 0}

    def dying_record_shard(self, rid, key, payload):
        if state["committed"] >= commits:
            if mode == "exit":
                os._exit(137)
            raise HarnessKilled(
                f"simulated crash before ledger commit {commits + 1}"
            )
        result = original(self, rid, key, payload)
        state["committed"] += 1
        return result

    RunLedger.record_shard = dying_record_shard
    try:
        yield state
    finally:
        RunLedger.record_shard = original


def tear_tail(path, drop: int = 5) -> None:
    """Truncate ``drop`` bytes off the end of ``path``.

    With ``drop`` smaller than the final line this leaves a torn tail —
    the on-disk state of a process killed mid-append (the final line is
    no longer valid JSON).  Ledger and witness-db records are far longer
    than the default, so the cut always lands inside the last record.
    """
    p = Path(path)
    size = p.stat().st_size
    if drop <= 0 or drop >= size:
        raise ValueError(f"drop must be in (0, {size}), got {drop}")
    with p.open("r+b") as fh:
        fh.truncate(size - drop)


def _counter_path(counter_dir: str, unit: object) -> str:
    digest = hashlib.sha256(repr(unit).encode("utf-8")).hexdigest()[:16]
    return os.path.join(counter_dir, digest)


class FlakyWorker:
    """Wrap a shard worker so every shard fails its first ``fail`` attempts.

    Attempt counts live in one file per shard under ``counter_dir``
    (keyed by a digest of the unit's repr), appended with ``O_APPEND``
    so they are correct across forked pool workers.  Failure modes:

    * ``"raise"`` — raise ``RuntimeError`` (exercises the bounded
      in-pool retry path of :func:`repro.engine.parallel.run_sharded`);
    * ``"exit"`` — ``os._exit(1)`` from inside a *pool worker* process,
      breaking the pool (exercises the pool-rebuild recovery path).
      When the engine retries the shard inline in the parent process,
      the failure downgrades to a raise — killing the test runner is
      not part of any contract.

    Instances are picklable: they carry only the wrapped worker (a
    module-level callable), a directory path, and scalars.
    """

    def __init__(self, worker, counter_dir, *, fail: int = 1, mode: str = "raise"):
        if mode not in ("raise", "exit"):
            raise ValueError(f"unknown failure mode {mode!r}")
        self.worker = worker
        self.counter_dir = str(counter_dir)
        self.fail = int(fail)
        self.mode = mode
        #: pid of the process that built the harness (the test runner)
        self.parent_pid = os.getpid()

    def __call__(self, unit):
        with open(_counter_path(self.counter_dir, unit), "ab") as fh:
            fh.write(b"x")
            fh.flush()
            attempts = os.fstat(fh.fileno()).st_size
        if attempts <= self.fail:
            if self.mode == "exit" and os.getpid() != self.parent_pid:
                os._exit(1)
            raise RuntimeError(
                f"flaky failure {attempts}/{self.fail} for unit {unit!r}"
            )
        return self.worker(unit)


def run_cli(argv: Iterable[str]) -> Tuple[int, str]:
    """Run ``repro.cli.main`` in-process; return ``(exit_code, stdout)``."""
    from repro.cli import main

    buf = io.StringIO()
    with redirect_stdout(buf):
        code = main(list(argv))
    return code, buf.getvalue()


#: subprocess driver: install kill_after(mode="exit"), then run the CLI.
_KILLED_CLI_DRIVER = """\
import json, os, sys
spec = json.loads(os.environ["FAULTS_SPEC"])
sys.path[:0] = spec["path"]
from faults import kill_after
from repro.cli import main
with kill_after(spec["commits"], mode="exit"):
    code = main(spec["argv"])
os._exit(code)
"""


def run_cli_killed(
    argv: Iterable[str],
    commits: int,
    *,
    cwd=None,
    timeout: float = 300.0,
) -> "subprocess.CompletedProcess[str]":
    """Run the CLI in a subprocess that dies before commit ``commits + 1``.

    The child ``os._exit(137)``s with no cleanup — the closest
    in-python analogue of ``kill -9`` (atexit skipped, buffered stdout
    lost, file left exactly as the last fsync'd append wrote it).  If
    the run needs fewer than ``commits + 1`` commits it completes and
    the child exits with the CLI's own return code instead.
    """
    env = dict(os.environ)
    env["FAULTS_SPEC"] = json.dumps(
        {
            "argv": list(argv),
            "commits": int(commits),
            "path": [str(_TESTS_DIR), str(_SRC_DIR)],
        }
    )
    return subprocess.run(
        [sys.executable, "-c", _KILLED_CLI_DRIVER],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        timeout=timeout,
    )
