"""Batched SMP kernel tests: the search substrate must agree with the
single-configuration engine bit for bit.

These exercise the retired :mod:`repro.core.batch` shim on purpose
(its import-time and call-time DeprecationWarnings are expected behavior,
filtered below); the rule-agnostic replacement is covered by
``test_engine_batch.py``.
"""

import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro.core import batch_smp_step, run_batch_smp

from repro.engine import run_synchronous
from repro.rules import SMPRule
from repro.topology import GraphTopology, ToroidalMesh

from helpers import TORUS_KINDS

pytestmark = pytest.mark.filterwarnings(
    "ignore:run_batch_smp is deprecated:DeprecationWarning"
)


def test_shim_import_warns():
    """A fresh import of the retired module emits DeprecationWarning."""
    sys.modules.pop("repro.core.batch", None)
    with pytest.warns(DeprecationWarning, match="repro.core.batch is retired"):
        import repro.core.batch  # noqa: F401


def test_core_import_stays_quiet():
    """Importing repro.core itself must not touch the retired shim."""
    sys.modules.pop("repro.core.batch", None)
    sys.modules.pop("repro.core", None)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        import repro.core  # noqa: F401
    assert "repro.core.batch" not in sys.modules


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), batch=st.integers(1, 8))
def test_batch_step_equals_single_step(seed, batch):
    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(4, 5)
    configs = rng.integers(0, 4, size=(batch, topo.num_vertices)).astype(np.int32)
    stepped = batch_smp_step(configs, topo.neighbors)
    rule = SMPRule()
    for b in range(batch):
        assert np.array_equal(stepped[b], rule.step(configs[b], topo))


def test_batch_run_matches_engine(rng, torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 4)
    k = 0
    configs = rng.integers(0, 3, size=(32, 16)).astype(np.int32)
    out = run_batch_smp(topo, configs, k, max_rounds=80)
    for b in range(configs.shape[0]):
        res = run_synchronous(
            topo, configs[b], SMPRule(), max_rounds=80, target_color=k
        )
        assert out.converged[b] == res.converged
        if res.converged:
            assert np.array_equal(out.final[b], res.final)
            assert out.k_monochromatic[b] == res.is_dynamo_run(k)
            assert out.monotone[b] == res.monotone


def test_batch_includes_constructions(torus_kind):
    from repro.core import build_minimum_dynamo

    con = build_minimum_dynamo(torus_kind, 5, 5)
    batch = np.stack([con.colors, con.colors])
    out = run_batch_smp(con.topo, batch, con.k, max_rounds=200)
    assert out.k_monochromatic.all()
    assert out.monotone.all()


def test_batch_input_not_mutated(rng):
    topo = ToroidalMesh(3, 3)
    configs = rng.integers(0, 3, size=(4, 9)).astype(np.int32)
    before = configs.copy()
    run_batch_smp(topo, configs, 0, max_rounds=10)
    assert np.array_equal(configs, before)


def test_batch_rejects_irregular_topology():
    import networkx as nx

    topo = GraphTopology(nx.path_graph(5))
    with pytest.raises(ValueError):
        run_batch_smp(topo, np.zeros((2, 5), dtype=np.int32), 0, 10)


def test_batch_round_cap():
    from repro.core import theorem4_cordalis_dynamo

    con = theorem4_cordalis_dynamo(8, 8)  # 24 rounds needed
    batch = con.colors[None, :]
    out = run_batch_smp(con.topo, batch, con.k, max_rounds=5)
    assert not out.converged[0]
    assert not out.k_monochromatic[0]
