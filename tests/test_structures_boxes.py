"""Toroidal bounding-box tests (the R_F of Lemma 1 / Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import bounding_box, minimal_arc_length
from repro.topology import ToroidalMesh


def test_minimal_arc_simple():
    assert minimal_arc_length(np.array([2, 3, 4]), 10) == (3, 2)


def test_minimal_arc_wraps():
    # {8, 9, 0, 1} wraps: arc of length 4 starting at 8
    length, start = minimal_arc_length(np.array([0, 1, 8, 9]), 10)
    assert (length, start) == (4, 8)


def test_minimal_arc_full_and_empty():
    assert minimal_arc_length(np.arange(7), 7) == (7, 0)
    assert minimal_arc_length(np.array([], dtype=int), 7) == (0, 0)


def test_minimal_arc_singleton():
    assert minimal_arc_length(np.array([5]), 9) == (1, 5)


def test_minimal_arc_prefers_biggest_gap():
    # {0, 5} in Z_12: gaps 5 and 7 -> arc covers 0..5 (length 6)
    length, start = minimal_arc_length(np.array([0, 5]), 12)
    assert length == 6 and start == 0


@settings(max_examples=50, deadline=None)
@given(
    modulus=st.integers(2, 20),
    data=st.data(),
)
def test_minimal_arc_covers_and_is_minimal(modulus, data):
    values = data.draw(
        st.lists(st.integers(0, modulus - 1), min_size=1, max_size=8)
    )
    occupied = np.asarray(values)
    length, start = minimal_arc_length(occupied, modulus)
    # covers
    for v in set(values):
        assert (v - start) % modulus < length
    # minimal: no shorter arc from any occupied start covers everything
    uniq = sorted(set(values))
    best = min(
        max((v - s) % modulus for v in uniq) + 1 for s in uniq
    )
    assert length == best


def test_bounding_box_of_cross():
    topo = ToroidalMesh(5, 7)
    ids = [topo.vertex_index(0, j) for j in range(7)] + [
        topo.vertex_index(i, 0) for i in range(5)
    ]
    box = bounding_box(topo, ids)
    assert box.extents == (5, 7)


def test_bounding_box_of_wrapping_square():
    topo = ToroidalMesh(6, 6)
    ids = [
        topo.vertex_index(i, j) for i in (5, 0) for j in (5, 0)
    ]  # 2x2 square across both wraps
    box = bounding_box(topo, ids)
    assert box.extents == (2, 2)
    assert box.row_start == 5 and box.col_start == 5
    assert box.contains(0, 0, 6, 6)
    assert not box.contains(2, 2, 6, 6)


def test_bounding_box_empty_set():
    topo = ToroidalMesh(4, 4)
    assert bounding_box(topo, []).extents == (0, 0)


def test_bounding_box_rejects_bad_ids():
    topo = ToroidalMesh(4, 4)
    with pytest.raises(ValueError):
        bounding_box(topo, [99])


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), count=st.integers(1, 10))
def test_bounding_box_contains_all_members(seed, count):
    topo = ToroidalMesh(7, 9)
    rng = np.random.default_rng(seed)
    ids = rng.choice(topo.num_vertices, size=count, replace=False)
    box = bounding_box(topo, ids)
    for v in ids:
        i, j = topo.vertex_coords(int(v))
        assert box.contains(i, j, topo.m, topo.n)
    assert box.row_extent * box.col_extent >= count
