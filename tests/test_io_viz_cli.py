"""Serialization, rendering, and CLI tests."""

import json

import numpy as np
import pytest

from repro.core import theorem2_mesh_dynamo, verify_dynamo
from repro.engine import run_synchronous
from repro.io import (
    construction_to_dict,
    load_configuration,
    load_run,
    save_configuration,
    save_run,
)
from repro.rules import SMPRule
from repro.topology import ToroidalMesh
from repro.viz import color_glyphs, render_grid, render_run, render_time_matrix


# ----------------------------------------------------------------------
# io
# ----------------------------------------------------------------------
def test_configuration_roundtrip(tmp_path):
    con = theorem2_mesh_dynamo(5, 6)
    path = tmp_path / "conf.json"
    save_configuration(path, con.topo, con.colors, con.k, name=con.name)
    topo, colors, k = load_configuration(path)
    assert isinstance(topo, ToroidalMesh)
    assert (topo.m, topo.n) == (5, 6)
    assert np.array_equal(colors, con.colors)
    assert k == con.k
    # the reloaded configuration still verifies
    assert verify_dynamo(topo, colors, k).is_monotone_dynamo


def test_configuration_json_is_plain(tmp_path):
    con = theorem2_mesh_dynamo(3, 3)
    path = tmp_path / "conf.json"
    save_configuration(path, con.topo, con.colors, con.k)
    payload = json.loads(path.read_text())
    assert payload["kind"] == "mesh"
    assert len(payload["colors"]) == 9


def test_load_rejects_inconsistent_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(
        json.dumps({"kind": "mesh", "m": 3, "n": 3, "k": 1, "colors": [1, 2]})
    )
    with pytest.raises(ValueError):
        load_configuration(path)


def test_run_roundtrip(tmp_path):
    con = theorem2_mesh_dynamo(4, 4)
    res = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k, record=True)
    path = tmp_path / "run.json"
    save_run(path, res, include_trajectory=True)
    back = load_run(path)
    assert np.array_equal(back.final, res.final)
    assert back.rounds == res.rounds
    assert back.converged and back.monotone == res.monotone
    assert len(back.trajectory) == len(res.trajectory)
    assert np.array_equal(back.trajectory[0], res.trajectory[0])


def test_construction_to_dict():
    con = theorem2_mesh_dynamo(5, 5)
    d = construction_to_dict(con)
    assert d["seed_size"] == 8
    assert d["kind"] == "mesh"
    assert len(d["seed"]) == 8
    json.dumps(d)  # fully JSON-serializable


# ----------------------------------------------------------------------
# viz
# ----------------------------------------------------------------------
def test_render_grid_shape_and_target_glyph():
    con = theorem2_mesh_dynamo(4, 5)
    text = render_grid(con.topo, con.colors, con.k, seed=con.seed)
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line.split()) == 5 for line in lines)
    assert "B" in text  # target color rendered as B
    # seed vertices uppercase, the recolorable gap lowercase
    assert lines[0].split()[0] == "B"


def test_render_time_matrix_alignment():
    m = np.array([[0, 10], [3, 2]])
    out = render_time_matrix(m)
    assert out.splitlines() == [" 0 10", " 3  2"]


def test_render_run_frames():
    con = theorem2_mesh_dynamo(4, 4)
    res = run_synchronous(con.topo, con.colors, SMPRule(), record=True)
    text = render_run(con.topo, res.trajectory, con.k)
    assert text.count("round ") == len(res.trajectory)


def test_color_glyphs_unique():
    glyphs = color_glyphs([0, 1, 2, 5], k=1)
    assert glyphs[1] == "B"
    assert len(set(glyphs.values())) == 4


# ----------------------------------------------------------------------
# cli
# ----------------------------------------------------------------------
def _run_cli(args, capsys):
    from repro.cli import main

    code = main(args)
    return code, capsys.readouterr().out


def test_cli_construct(capsys):
    code, out = _run_cli(["construct", "mesh", "5", "5"], capsys)
    assert code == 0
    assert "|S_k| = 8" in out
    assert "B" in out


def test_cli_construct_save_and_simulate(tmp_path, capsys):
    conf = tmp_path / "c.json"
    code, _ = _run_cli(["construct", "cordalis", "5", "5", "--save", str(conf)], capsys)
    assert code == 0 and conf.exists()
    code, out = _run_cli(
        ["simulate", "cordalis", "5", "5", "--load", str(conf), "--render"], capsys
    )
    assert code == 0
    assert "monochromatic(1)" in out


def test_cli_verify(capsys):
    code, out = _run_cli(["verify", "serpentinus", "5", "5"], capsys)
    assert code == 0
    assert "is_dynamo=True" in out


def test_cli_matrix_matches_figure6(capsys):
    code, out = _run_cli(["matrix", "cordalis", "5", "5"], capsys)
    assert code == 0
    assert out.splitlines()[1].split() == ["0", "1", "2", "3", "4"]


def test_cli_sweep(capsys):
    code, out = _run_cli(["sweep", "mesh", "4", "5"], capsys)
    assert code == 0
    assert "4x4" in out and "5x5" in out


def test_cli_sweep_convergence_with_processes(capsys):
    # --processes now shards --convergence instead of being rejected
    code, out = _run_cli(
        ["sweep", "mesh", "4", "--convergence", "--replicas", "16",
         "--processes", "2", "--shard-size", "8"], capsys
    )
    assert code == 0
    assert "4x4" in out and "smp" in out


def test_cli_census_with_processes(capsys):
    code, out = _run_cli(
        ["census", "--kinds", "mesh", "--sizes", "3", "--processes", "2"],
        capsys,
    )
    assert code == 0
    assert "exhaustive" in out


def test_cli_rejects_negative_processes(capsys):
    with pytest.raises(SystemExit):
        _run_cli(["sweep", "mesh", "4", "--processes", "-2"], capsys)
    capsys.readouterr()  # drain the usage message


def test_cli_simulate_nonconvergent_exit_code(tmp_path, capsys):
    # a frozen non-dynamo still converges (fixed point) -> exit 0; but a
    # capped run that never settles exits 1
    code, _ = _run_cli(
        ["simulate", "cordalis", "8", "8", "--max-rounds", "2"], capsys
    )
    assert code == 1


def test_cli_diagonal(capsys):
    code, out = _run_cli(["diagonal", "mesh", "4"], capsys)
    assert code == 0
    assert "size 4 vs paper bound 6" in out
    assert "monotone dynamo: True" in out


def test_cli_figures(capsys):
    code, out = _run_cli(["figures"], capsys)
    assert code == 0
    assert out.count("MATCH") == 6
    assert "MISMATCH" not in out


def test_cli_theorems(capsys):
    code, out = _run_cli(["theorems"], capsys)
    assert code == 0
    assert "Theorem 1" in out and "REFUTED" in out
    assert "Proposition 2" in out and "MATCH" in out
