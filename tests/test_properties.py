"""Global dynamical properties: Lemma 1, monotone growth, derivability,
and post-hoc validation of every recoloring the engine ever performs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import run_synchronous
from repro.rules import SMPRule
from repro.structures import bounding_box, derivable_k_set, derived_history
from repro.topology import ToroidalMesh

from helpers import TORUS_KINDS

K = 0


def _box_extents(topo, mask):
    return bounding_box(topo, np.flatnonzero(mask)).extents


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_lemma1_bounding_box_never_grows(seed):
    """Lemma 1: a k-set whose bounding box fits strictly inside an
    (m-1) x (n-1) window can never grow its box — at every round of any
    dynamics the k-set stays inside the initial rectangle."""
    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(6, 7)
    colors = rng.integers(1, 4, size=topo.num_vertices).astype(np.int32)
    # confine k to a random 3x4 sub-box (extents <= m-2, n-2)
    i0, j0 = int(rng.integers(6)), int(rng.integers(7))
    grid = colors.reshape(6, 7)
    cells = [((i0 + di) % 6, (j0 + dj) % 7) for di in range(3) for dj in range(4)]
    chosen = rng.random(12) < 0.5
    for (i, j), c in zip(cells, chosen):
        if c:
            grid[i, j] = K
    if not (colors == K).any():
        grid[i0, j0] = K
    history = derived_history(topo, colors, K, max_rounds=80)
    m0, n0 = _box_extents(topo, history[0])
    assert m0 <= 5 and n0 <= 6
    box0 = bounding_box(topo, np.flatnonzero(history[0]))
    for mask in history[1:]:
        for v in np.flatnonzero(mask):
            i, j = topo.vertex_coords(int(v))
            assert box0.contains(i, j, topo.m, topo.n)


def test_lemma1_row_band_case():
    """The one-small-extent branch: a k row-band never gains rows even
    when it spans every column."""
    topo = ToroidalMesh(6, 6)
    rng = np.random.default_rng(3)
    colors = rng.integers(1, 4, size=36).astype(np.int32)
    colors.reshape(6, 6)[2:4, :] = K
    history = derived_history(topo, colors, K, max_rounds=60)
    for mask in history:
        rows = {int(v) // 6 for v in np.flatnonzero(mask)}
        assert rows.issubset({2, 3})


def test_monotone_dynamo_k_sets_form_increasing_chain(torus_kind):
    from repro.core import build_minimum_dynamo

    con = build_minimum_dynamo(torus_kind, 6, 6)
    history = derived_history(con.topo, con.colors, con.k)
    for a, b in zip(history, history[1:]):
        assert np.all(b[a])  # a subset of b
    assert history[-1].all()


def test_derivable_k_set_of_dynamo_is_everything(torus_kind):
    from repro.core import build_minimum_dynamo

    con = build_minimum_dynamo(torus_kind, 5, 5)
    mask, converged = derivable_k_set(con.topo, con.colors, con.k)
    assert converged and mask.all()


def test_derivable_k_set_of_frozen_configuration():
    from repro.experiments import find_frozen_completion

    topo = ToroidalMesh(5, 5)
    colors = find_frozen_completion(5, 5)
    mask, converged = derivable_k_set(topo, colors, 1)
    assert converged
    assert np.array_equal(mask, np.asarray(colors) == 1)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_every_recoloring_is_justified(seed):
    """Post-hoc audit: whenever the engine changes a vertex's color, the
    adopted color was held by >= 2 of its neighbors and no other color
    reached 2 (the normalized SMP rule, validated on whole trajectories)."""
    from collections import Counter

    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(5, 5)
    colors = rng.integers(0, 4, size=25).astype(np.int32)
    res = run_synchronous(topo, colors, SMPRule(), record=True, max_rounds=40)
    for prev, curr in zip(res.trajectory, res.trajectory[1:]):
        for v in np.flatnonzero(prev != curr):
            nb = [int(prev[int(w)]) for w in topo.neighbors[v]]
            counts = Counter(nb)
            reaching = [c for c, cnt in counts.items() if cnt >= 2]
            assert reaching == [int(curr[v])]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), perm_seed=st.integers(0, 2**31 - 1))
def test_color_permutation_commutes_with_full_run(seed, perm_seed):
    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(4, 5)
    colors = rng.integers(0, 5, size=20).astype(np.int32)
    perm = np.random.default_rng(perm_seed).permutation(5).astype(np.int32)
    plain = run_synchronous(topo, colors, SMPRule(), max_rounds=60)
    permed = run_synchronous(topo, perm[colors], SMPRule(), max_rounds=60)
    assert np.array_equal(permed.final, perm[plain.final])
    assert permed.rounds == plain.rounds


def test_monochromatic_absorbing_under_all_rules(torus_kind):
    from repro.rules import (
        GeneralizedPluralityRule,
        ReverseStrongMajority,
        SMPRule,
    )

    topo = TORUS_KINDS[torus_kind](4, 4)
    colors = np.full(16, 3, dtype=np.int32)
    for rule in (SMPRule(), ReverseStrongMajority(), GeneralizedPluralityRule(5)):
        assert np.array_equal(rule.step(colors, topo), colors), rule.name()


def test_fixed_points_are_rule_fixed_points(rng, torus_kind):
    """Whatever state the engine reports as converged must be a genuine
    fixed point of the rule."""
    topo = TORUS_KINDS[torus_kind](5, 5)
    rule = SMPRule()
    for _ in range(10):
        colors = rng.integers(0, 3, size=25).astype(np.int32)
        res = run_synchronous(topo, colors, rule, max_rounds=120)
        if res.converged:
            assert np.array_equal(rule.step(res.final, topo), res.final)
