"""Execution-plan subsystem tests (:mod:`repro.engine.plans`).

Two contracts are pinned here:

* **bitwise invisibility** — caching and escalation never change any
  result: the escalation parity matrix runs plans on/off x backends x
  torus kinds x engine-flag variants and compares every
  :class:`BatchRunResult` field, and the seed-stability tests pin that
  witnesses, census rows, and stored ids are identical under any plan;
* **cache correctness** — hits/misses/evictions behave, a mutated rule
  misses (plan tokens change with spec-relevant state), non-authoritative
  tokens are withheld (subclassed kernels), and compiled steppers stay
  process-local (pool workers fill their own cache).
"""

import pickle

import numpy as np
import pytest

from repro.core.search import random_dynamo_search
from repro.engine import (
    DEFAULT_PLAN,
    NO_PLAN,
    ExecutionPlan,
    clear_plan_cache,
    default_initial_rounds,
    default_round_cap,
    escalation_budgets,
    plan_cache_stats,
    resolve_plan,
    run_batch,
    run_synchronous,
    run_temporal,
    validate_round_cap,
)
from repro.engine.backends import available_backend_names
from repro.engine.plans import rule_plan_token, stepper_cache_key, topology_token
from repro.experiments import below_bound_census, convergence_sweep
from repro.io.witnessdb import WitnessDB
from repro.rules import (
    GeneralizedPluralityRule,
    LinearThresholdRule,
    OrderedIncrementRule,
    ReverseSimpleMajority,
    Rule,
    SMPRule,
)
from repro.topology import (
    AlwaysAvailable,
    BernoulliAvailability,
    TemporalTopology,
    ToroidalMesh,
)

from helpers import TORUS_KINDS

RESULT_FIELDS = (
    "final", "rounds", "converged", "cycle_length", "fixed_point_round",
    "monotone",
)

#: rule cases of the escalation parity matrix (factory, low, palette, target)
RULE_CASES = {
    "smp": (lambda: SMPRule(), 0, 4, 0),
    "majority": (lambda: ReverseSimpleMajority("prefer-black"), 1, 2, 2),
    "plurality": (lambda: GeneralizedPluralityRule(5), 0, 5, 0),
    "ordered": (lambda: OrderedIncrementRule(4), 0, 4, 3),
    "threshold": (lambda: LinearThresholdRule("simple"), 0, 2, 1),
}

#: engine-flag variants: cycle detection on/off x frozen/irreversible
VARIANTS = {
    "plain": {},
    "no-cycles": {"detect_cycles": False},
    "frozen": {"frozen": [0, 3, 7], "detect_cycles": False},
    "irreversible": {"detect_cycles": False},  # irreversible_color per-case
}


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts from an empty stepper registry."""
    clear_plan_cache()
    yield
    clear_plan_cache()


def _assert_results_equal(res, ref, context):
    for field in RESULT_FIELDS:
        a, b = getattr(res, field), getattr(ref, field)
        if a is None or b is None:
            assert a is b, (context, field)
        else:
            assert np.array_equal(a, b), (context, field)


# ----------------------------------------------------------------------
# the escalation parity matrix: plans on/off x backends x kinds x flags
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", available_backend_names())
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("case", sorted(RULE_CASES))
def test_escalation_parity_matrix(rng, torus_kind, case, variant, backend):
    topo = TORUS_KINDS[torus_kind](4, 5)
    factory, low, palette, target = RULE_CASES[case]
    rule = factory()
    batch = rng.integers(low, low + palette, size=(32, topo.num_vertices)).astype(
        np.int32
    )
    kwargs = dict(VARIANTS[variant])
    if variant == "irreversible":
        kwargs["irreversible_color"] = target
    ref = run_batch(
        topo, batch, rule, max_rounds=100, target_color=target,
        backend=backend, plan=NO_PLAN, **kwargs,
    )
    res = run_batch(
        topo, batch, rule, max_rounds=100, target_color=target,
        backend=backend, plan=DEFAULT_PLAN, **kwargs,
    )
    _assert_results_equal(res, ref, (backend, case, variant))


def test_escalation_parity_across_round_caps(rng):
    """Sweep the cap through every phase of the shadow fast-forward
    (before arming, mid-verification, deep cycling) — the modular
    arithmetic of the cap state must hold at every value."""
    topo = ToroidalMesh(4, 4)
    rule = SMPRule()
    batch = rng.integers(0, 5, size=(48, 16)).astype(np.int32)
    plan = ExecutionPlan(initial_rounds=3, growth=2)
    for cap in list(range(0, 24)) + [33, 48, 80, 101]:
        ref = run_batch(topo, batch, rule, max_rounds=cap, target_color=0,
                        detect_cycles=False, plan=NO_PLAN)
        res = run_batch(topo, batch, rule, max_rounds=cap, target_color=0,
                        detect_cycles=False, plan=plan)
        _assert_results_equal(res, ref, cap)
        assert not res.converged.all()  # the pin is meaningful: rows cycle


def test_escalation_retires_cycling_rows_early(rng):
    """The point of the exercise: a cycling-heavy search batch under an
    escalating plan must not simulate every row to the cap.  Proxy: the
    escalated run is must faster in rounds actually stepped — asserted
    through a counting stepper."""
    calls = {"on": 0, "off": 0}

    class CountingSMP(SMPRule):
        def __init__(self, key):
            self._key = key

        def step_batch(self, colors, topo, out=None):
            calls[self._key] += colors.shape[0]  # row-rounds simulated
            return SMPRule.step_batch(self, colors, topo, out=out)

    topo = ToroidalMesh(4, 4)
    batch = rng.integers(0, 5, size=(128, 16)).astype(np.int32)
    kw = dict(max_rounds=80, target_color=0, detect_cycles=False)
    ref = run_batch(topo, batch, CountingSMP("off"), plan=NO_PLAN, **kw)
    res = run_batch(topo, batch, CountingSMP("on"), plan=DEFAULT_PLAN, **kw)
    _assert_results_equal(res, ref, "counting")
    assert not ref.converged.all()
    # cycling rows retire after verification instead of running to 80
    assert calls["on"] < calls["off"] / 2, calls


# ----------------------------------------------------------------------
# seed stability: witnesses / census rows / ids are plan-independent
# ----------------------------------------------------------------------
def test_random_search_is_plan_independent():
    topo = ToroidalMesh(4, 4)
    kwargs = dict(k=0, monotone_only=True, batch_size=128, processes=0)
    ref = random_dynamo_search(topo, 3, 5, 4096, 0xBEEF, plan=NO_PLAN, **kwargs)
    out = random_dynamo_search(
        topo, 3, 5, 4096, 0xBEEF, plan=ExecutionPlan(initial_rounds=4), **kwargs
    )
    assert out.examined == ref.examined
    assert len(out.witnesses) == len(ref.witnesses)
    for (ca, ma), (cb, mb) in zip(out.witnesses, ref.witnesses):
        assert ma == mb and np.array_equal(ca, cb)
    assert ref.found_monotone_dynamo  # the pin is meaningful: hits exist


def test_census_rows_and_witness_ids_are_plan_independent(tmp_path):
    kwargs = dict(kinds=["mesh"], sizes=[3, 4], random_trials=400)
    dbs, rows = {}, {}
    for name, plan in (("off", NO_PLAN), ("on", DEFAULT_PLAN)):
        db = WitnessDB(tmp_path / f"{name}.jsonl")
        rows[name] = below_bound_census(db=db, plan=plan, **kwargs)
        dbs[name] = db
    assert rows["off"] == rows["on"]
    ids_off = sorted(r.id for r in dbs["off"])
    assert ids_off == sorted(r.id for r in dbs["on"])
    assert ids_off  # witnesses were actually recorded
    assert (
        sorted(c.id for c in dbs["off"].cells)
        == sorted(c.id for c in dbs["on"].cells)
    )


def test_cached_census_serves_across_plans(tmp_path):
    """A census computed under one plan serves cache hits to another —
    plan settings never enter the cell definition."""
    path = tmp_path / "w.jsonl"
    kwargs = dict(kinds=["mesh"], sizes=[3], random_trials=400)
    first = below_bound_census(db=WitnessDB(path), plan=NO_PLAN, **kwargs)
    stats = {}
    second = below_bound_census(
        db=WitnessDB(path), plan=ExecutionPlan(initial_rounds=2), stats=stats,
        **kwargs,
    )
    assert first == second
    assert stats["cache_hits"] == stats["cells"] == 1


def test_convergence_sweep_is_plan_independent():
    pts = [("mesh", 4, 4), ("cordalis", 5, 5)]
    kwargs = dict(replicas=128, batch_size=64, processes=0)
    assert np.array_equal(
        convergence_sweep(pts, plan=NO_PLAN, **kwargs),
        convergence_sweep(pts, plan=ExecutionPlan(initial_rounds=3), **kwargs),
    )


def test_run_synchronous_backend_and_plan_are_bitwise_invisible(rng):
    topo = ToroidalMesh(4, 5)
    for case in sorted(RULE_CASES):
        factory, low, palette, target = RULE_CASES[case]
        rule = factory()
        colors = rng.integers(low, low + palette, size=20).astype(np.int32)
        ref = run_synchronous(topo, colors, rule, target_color=target,
                              plan=NO_PLAN)
        for backend in available_backend_names():
            res = run_synchronous(topo, colors, rule, target_color=target,
                                  backend=backend)
            assert np.array_equal(res.final, ref.final), (case, backend)
            assert res.rounds == ref.rounds
            assert res.converged == ref.converged
            assert res.cycle_length == ref.cycle_length
            assert res.monotone == ref.monotone


def test_run_synchronous_custom_scalar_step_keeps_its_kernel():
    """A rule overriding `step` keeps its own kernel — the plan/backend
    fast path only applies to the stock batched delegation."""

    class FreezeRule(SMPRule):
        def step(self, colors, topo, out=None):
            if out is None:
                return colors.copy()
            np.copyto(out, colors)
            return out

    topo = ToroidalMesh(3, 3)
    colors = np.arange(9, dtype=np.int32) % 3
    res = run_synchronous(topo, colors, FreezeRule(), max_rounds=10)
    assert res.converged and np.array_equal(res.final, colors)


# ----------------------------------------------------------------------
# stepper cache behaviour
# ----------------------------------------------------------------------
def test_plan_cache_hit_miss_and_eviction(rng):
    clear_plan_cache(maxsize=2)
    topo = ToroidalMesh(4, 4)
    batch = rng.integers(0, 4, size=(8, 16)).astype(np.int32)
    run_batch(topo, batch, SMPRule(), max_rounds=5)
    s = plan_cache_stats()
    assert (s.hits, s.misses, s.size) == (0, 1, 1)
    run_batch(topo, batch, SMPRule(), max_rounds=5)  # same key, new instance
    s = plan_cache_stats()
    assert (s.hits, s.misses) == (1, 1)
    # a different batch width is a different key
    run_batch(topo, batch[:4], SMPRule(), max_rounds=5)
    assert plan_cache_stats().misses == 2
    # third distinct key evicts the least-recently-used entry
    run_batch(topo, batch, OrderedIncrementRule(4), max_rounds=5)
    s = plan_cache_stats()
    assert s.evictions == 1 and s.size == 2 and s.maxsize == 2
    clear_plan_cache()
    assert plan_cache_stats().size == 0


def test_plan_cache_respects_cache_flag(rng):
    topo = ToroidalMesh(4, 4)
    batch = rng.integers(0, 4, size=(8, 16)).astype(np.int32)
    run_batch(topo, batch, SMPRule(), max_rounds=5, plan=NO_PLAN)
    s = plan_cache_stats()
    assert (s.hits, s.misses, s.size) == (0, 0, 0)


def test_mutated_rule_state_invalidates_cached_stepper(rng):
    """The plan-token contract: mutating spec-relevant state must miss
    the cache and recompile — never serve the stale kernel."""
    topo = ToroidalMesh(4, 4)
    batch = rng.integers(0, 4, size=(16, 16)).astype(np.int32)
    rule = OrderedIncrementRule(4, threshold="simple")
    first = run_batch(topo, batch, rule, max_rounds=30)
    assert plan_cache_stats().misses == 1
    rule.threshold = "strong"  # spec-relevant mutation
    mutated = run_batch(topo, batch, rule, max_rounds=30)
    assert plan_cache_stats().misses == 2  # recompiled, not served
    fresh = run_batch(
        topo, batch, OrderedIncrementRule(4, threshold="strong"),
        max_rounds=30, plan=NO_PLAN,
    )
    _assert_results_equal(mutated, fresh, "mutated rule")
    rule.threshold = "simple"  # mutating back re-serves the first entry
    again = run_batch(topo, batch, rule, max_rounds=30)
    _assert_results_equal(again, first, "restored rule")
    assert plan_cache_stats().hits >= 1


def test_tie_policy_and_threshold_vector_tokens():
    assert rule_plan_token(ReverseSimpleMajority("prefer-black")) != (
        rule_plan_token(ReverseSimpleMajority("prefer-current"))
    )
    a = LinearThresholdRule([1, 2, 1, 2])
    b = LinearThresholdRule([1, 2, 1, 2])
    c = LinearThresholdRule([2, 2, 2, 2])
    assert rule_plan_token(a) == rule_plan_token(b) != rule_plan_token(c)
    # the plurality threshold callable joins the token by identity
    fn = lambda d: d // 2 + 1  # noqa: E731
    assert rule_plan_token(GeneralizedPluralityRule(4, fn)) == rule_plan_token(
        GeneralizedPluralityRule(4, fn)
    )
    assert rule_plan_token(
        GeneralizedPluralityRule(4, fn)
    ) != rule_plan_token(GeneralizedPluralityRule(4, lambda d: d // 2 + 1))


def test_subclassed_kernel_withholds_inherited_token(rng):
    """A subclass overriding step_batch without republishing plan_token
    must not share cache entries keyed by the parent's token — and must
    run its own kernel under a caching plan."""

    class NeverRecolor(SMPRule):
        def step_batch(self, colors, topo, out=None):
            if out is None:
                return colors.copy()
            np.copyto(out, colors)
            return out

    assert rule_plan_token(NeverRecolor()) is None
    topo = ToroidalMesh(4, 4)
    batch = rng.integers(0, 4, size=(8, 16)).astype(np.int32)
    run_batch(topo, batch, SMPRule(), max_rounds=5)  # warm the SMP entry
    res = run_batch(topo, batch, NeverRecolor(), max_rounds=5)
    assert res.converged.all()
    assert np.array_equal(res.final, batch)  # its own kernel, not SMP's


def test_unhashable_plan_token_is_withheld():
    class Unhashable(list):
        __hash__ = None

    class WeirdRule(SMPRule):
        def step_batch(self, colors, topo, out=None):
            return SMPRule.step_batch(self, colors, topo, out=out)

        def kernel_spec(self, topo):
            return SMPRule.kernel_spec(self, topo)

        def plan_token(self):
            return (Unhashable(),)

    assert rule_plan_token(WeirdRule()) is None


def test_custom_rule_without_token_is_never_cached(rng):
    class Stubborn(Rule):
        def step(self, colors, topo, out=None):
            if out is None:
                return colors.copy()
            np.copyto(out, colors)
            return out

        def update_vertex(self, current, neighbor_colors):
            return current

    topo = ToroidalMesh(3, 3)
    assert rule_plan_token(Stubborn()) is None
    batch = rng.integers(0, 3, size=(4, 9)).astype(np.int32)
    run_batch(topo, batch, Stubborn(), max_rounds=5)
    assert plan_cache_stats().size == 0


def test_topology_token_structural_for_tori_and_graphs_identity_otherwise():
    import networkx as nx

    from repro.topology import GraphTopology
    from repro.topology.base import Topology

    assert topology_token(ToroidalMesh(4, 5)) == topology_token(
        ToroidalMesh(4, 5)
    )
    assert topology_token(ToroidalMesh(4, 5)) != topology_token(
        ToroidalMesh(5, 4)
    )
    # graphs are content-addressed via structure_token(): equal structures
    # share cached steppers across instances, distinct structures never do
    g1 = GraphTopology(nx.path_graph(5))
    g2 = GraphTopology(nx.path_graph(5))
    assert topology_token(g1) == topology_token(g2)
    assert topology_token(g1) != topology_token(GraphTopology(nx.path_graph(6)))

    # a topology with no structural token falls back to identity serials
    class Opaque(Topology):
        def __init__(self):
            self._nb = np.array([[1], [0]], dtype=np.int64)

        @property
        def num_vertices(self):
            return 2

        @property
        def neighbors(self):
            return self._nb

    o1, o2 = Opaque(), Opaque()
    assert topology_token(o1) == topology_token(o1)
    assert topology_token(o1) != topology_token(o2)

    class MeshSubclass(ToroidalMesh):
        pass

    # subclasses never share the registry-torus structural key
    assert topology_token(MeshSubclass(4, 5)) != topology_token(
        ToroidalMesh(4, 5)
    )


def test_stepper_cache_key_components():
    topo = ToroidalMesh(4, 4)
    key = stepper_cache_key("stencil", SMPRule(), topo, 64)
    assert key is not None and key[0] == "stencil" and key[-1] == 64
    # uncacheable rule -> no key

    class Custom(SMPRule):
        def step_batch(self, colors, topo, out=None):
            return SMPRule.step_batch(self, colors, topo, out=out)

    assert stepper_cache_key("stencil", Custom(), topo, 64) is None


# ----------------------------------------------------------------------
# per-worker isolation and plan pickling
# ----------------------------------------------------------------------
def test_plans_pickle_as_settings_only():
    plan = ExecutionPlan(cache=True, escalate=False, initial_rounds=7, growth=3)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan


def test_sharded_search_keeps_parent_cache_untouched():
    """Pool workers fill their own process-local registries; the parent's
    counters must not move while shards run elsewhere."""
    topo = ToroidalMesh(4, 4)
    before = plan_cache_stats()
    out = random_dynamo_search(
        topo, 3, 5, 512, 0xBEEF, monotone_only=True, batch_size=64,
        shard_size=128, processes=2,
    )
    assert out.examined == 512
    after = plan_cache_stats()
    assert (after.hits, after.misses) == (before.hits, before.misses)
    # and the sharded outcome matches the inline one bitwise
    inline = random_dynamo_search(
        topo, 3, 5, 512, 0xBEEF, monotone_only=True, batch_size=64,
        shard_size=128, processes=0,
    )
    assert len(out.witnesses) == len(inline.witnesses)
    for (ca, ma), (cb, mb) in zip(out.witnesses, inline.witnesses):
        assert ma == mb and np.array_equal(ca, cb)


# ----------------------------------------------------------------------
# plan settings validation and budgets
# ----------------------------------------------------------------------
def test_execution_plan_validates_settings():
    with pytest.raises(ValueError, match="initial_rounds"):
        ExecutionPlan(initial_rounds=0)
    with pytest.raises(ValueError, match="growth"):
        ExecutionPlan(growth=1)
    with pytest.raises(TypeError, match="ExecutionPlan"):
        resolve_plan("fast")
    assert resolve_plan(None) is DEFAULT_PLAN


def test_escalation_budgets_schedule():
    assert escalation_budgets(8, 100) == [8, 32, 100]
    assert escalation_budgets(8, 100, growth=2) == [8, 16, 32, 64, 100]
    assert escalation_budgets(50, 20) == [20]  # clamped to the cap
    assert escalation_budgets(8, 8) == [8]
    assert escalation_budgets(8, 0) == [0]
    with pytest.raises(ValueError):
        escalation_budgets(0, 100)
    with pytest.raises(ValueError):
        escalation_budgets(8, 100, growth=1)
    topo = ToroidalMesh(6, 6)
    assert default_initial_rounds(topo) == 36 // 4 + 8
    assert DEFAULT_PLAN.budgets(topo, default_round_cap(topo))[-1] == (
        default_round_cap(topo)
    )
    assert NO_PLAN.budgets(topo, 50) == [50]


# ----------------------------------------------------------------------
# the shared round-cap validator (batch / scalar / temporal agree)
# ----------------------------------------------------------------------
def test_validate_round_cap_shared_semantics():
    topo = ToroidalMesh(3, 3)
    assert validate_round_cap(None, topo) == default_round_cap(topo)
    assert validate_round_cap(0, topo) == 0
    for bad in (-1, 2.5, "x"):
        with pytest.raises(ValueError, match="max_rounds"):
            validate_round_cap(bad, topo)


def test_all_drivers_reject_negative_caps_and_accept_zero(rng):
    topo = ToroidalMesh(3, 3)
    colors = rng.integers(0, 3, size=9).astype(np.int32)
    batch = colors[None, :]
    ttopo = TemporalTopology(topo, AlwaysAvailable())
    plurality = GeneralizedPluralityRule(3)
    for call in (
        lambda mr: run_batch(topo, batch, SMPRule(), max_rounds=mr),
        lambda mr: run_synchronous(topo, colors, SMPRule(), max_rounds=mr),
        lambda mr: run_temporal(ttopo, colors, plurality, max_rounds=mr),
    ):
        with pytest.raises(ValueError, match="max_rounds"):
            call(-1)
        res = call(0)
        final = res.final if res.final.ndim == 1 else res.final[0]
        assert np.array_equal(final, colors)


def test_temporal_default_cap_is_the_shared_budget():
    """run_temporal's magic 10_000 is gone: a never-converging run under
    the default cap stops at default_round_cap(topo)."""
    topo = ToroidalMesh(4, 4)
    rng = np.random.default_rng(3)
    ttopo = TemporalTopology(topo, BernoulliAvailability(0.0, rng))
    colors = (np.arange(16) % 3).astype(np.int32)
    res = run_temporal(ttopo, colors, GeneralizedPluralityRule(3))
    assert not res.converged
    assert res.rounds == default_round_cap(topo)
