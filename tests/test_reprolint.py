"""reprolint: per-rule fixtures (violating / clean / suppressed) and the
self-check that the shipped tree stays lint-clean.

Each rule family gets three fixture flavours: a snippet that must
produce exactly the expected rule id at the expected location, a clean
variant that must produce nothing, and a suppressed variant proving
``# reprolint: disable=...`` works at both line and file granularity.
The docs family is exercised against a miniature repo tree built on
disk (it reads real files), and the suite ends with the acceptance
check: ``src tests benchmarks`` lint clean exactly as CI runs them.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import lint_project, lint_source
from tools.reprolint.__main__ import main as reprolint_main

ROOT = Path(__file__).resolve().parent.parent

LIB = "src/repro/_fixture.py"


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# determinism family
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_d001_stdlib_random_import(self):
        findings = lint_source("import random\n", path=LIB)
        assert rules_of(findings) == ["RPL-D001"]
        assert (findings[0].line, findings[0].col) == (1, 1)

    def test_d001_from_import(self):
        findings = lint_source("from random import shuffle\n", path=LIB)
        assert rules_of(findings) == ["RPL-D001"]

    def test_d002_global_seed(self):
        src = "import numpy as np\nnp.random.seed(7)\n"
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-D002"]
        assert findings[0].line == 2

    def test_d002_randomstate(self):
        src = "import numpy\nr = numpy.random.RandomState(3)\n"
        assert rules_of(lint_source(src, path=LIB)) == ["RPL-D002"]

    def test_d003_argless_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-D003"]
        assert (findings[0].line, findings[0].col) == (2, 7)

    def test_d003_from_import_alias(self):
        src = "from numpy.random import default_rng\nr = default_rng()\n"
        assert rules_of(lint_source(src, path=LIB)) == ["RPL-D003"]

    def test_d003_clean_with_seed(self):
        src = "import numpy as np\nrng = np.random.default_rng(0xA11A)\n"
        assert lint_source(src, path=LIB) == []

    def test_d004_time_seed(self):
        src = (
            "import time\nimport numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n"
        )
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-D004"]
        assert findings[0].line == 3

    def test_d004_urandom_seed_sequence(self):
        src = (
            "import os\nimport numpy as np\n"
            "ss = np.random.SeedSequence(int.from_bytes(os.urandom(8), 'big'))\n"
        )
        assert rules_of(lint_source(src, path=LIB)) == ["RPL-D004"]

    def test_d004_time_stamp_in_run_digest(self):
        """A run id salted with the clock is unreachable after a crash —
        the exact failure the run ledger exists to prevent."""
        src = (
            "import hashlib\nimport time\n"
            "rid = hashlib.sha256(str(time.time()).encode()).hexdigest()\n"
        )
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-D004"]
        assert findings[0].line == 3
        assert "time.time" in findings[0].message

    def test_d004_getpid_in_digest(self):
        src = (
            "import hashlib\nimport os\n"
            "tag = hashlib.md5(str(os.getpid()).encode()).hexdigest()\n"
        )
        assert rules_of(lint_source(src, path=LIB)) == ["RPL-D004"]

    def test_d004_digest_of_canonical_definition_is_clean(self):
        src = (
            "import hashlib\nimport json\n"
            "def run_id(definition):\n"
            "    text = json.dumps(definition, sort_keys=True)\n"
            "    return hashlib.sha256(text.encode()).hexdigest()[:16]\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_d005_set_iteration_in_ledger_path(self):
        src = "keys = [k for k in {('s', 1), ('s', 0)}]\n"
        findings = lint_source(src, path="src/repro/io/ledger.py")
        assert rules_of(findings) == ["RPL-D005"]

    def test_d005_set_iteration_in_serialize_path(self):
        src = "ids = [x for x in {3, 1, 2}]\n"
        findings = lint_source(src, path="src/repro/io/serialize.py")
        assert rules_of(findings) == ["RPL-D005"]

    def test_d005_sorted_set_is_clean(self):
        src = "ids = [x for x in sorted({3, 1, 2})]\n"
        assert lint_source(src, path="src/repro/io/serialize.py") == []

    def test_d005_membership_and_equality_are_clean(self):
        src = "ok = {1, 2} == {2, 1}\nhit = 1 in {1, 2}\n"
        assert lint_source(src, path="src/repro/io/witnessdb.py") == []

    def test_d005_out_of_scope_module_unchecked(self):
        src = "ids = [x for x in {3, 1, 2}]\n"
        assert lint_source(src, path="src/repro/engine/foo.py") == []

    def test_suppressed_line(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # reprolint: disable=RPL-D003\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_suppressed_file_level(self):
        src = (
            "# reprolint: disable=RPL-D003\n"
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "b = np.random.default_rng()\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_line_suppression_does_not_leak(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng()  # reprolint: disable=RPL-D003\n"
            "b = np.random.default_rng()\n"
        )
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-D003"]
        assert findings[0].line == 3

    def test_disable_all(self):
        src = (
            "# reprolint: disable=all\n"
            "import random\n"
            "import numpy as np\n"
            "np.random.seed(1)\n"
        )
        assert lint_source(src, path=LIB) == []


# ---------------------------------------------------------------------------
# plan-token family
# ---------------------------------------------------------------------------

_P_VIOLATION = """\
from repro.rules.base import Rule


class CustomRule(Rule):
    def step_batch(self, colors, topo):
        return colors
"""

_P_CLEAN = """\
from repro.rules.base import Rule


class CustomRule(Rule):
    def step_batch(self, colors, topo):
        return colors

    def plan_token(self):
        return ("custom",)
"""


class TestPlanToken:
    def test_p001_override_without_token(self):
        findings = lint_source(_P_VIOLATION, path=LIB)
        assert rules_of(findings) == ["RPL-P001"]
        assert findings[0].line == 4  # the class statement

    def test_p001_transitive_subclass(self):
        src = _P_CLEAN + (
            "\n\nclass GrandChild(CustomRule):\n"
            "    def update_vertex(self, current, neighbors):\n"
            "        return current\n"
        )
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-P001"]
        assert "GrandChild" in findings[0].message

    def test_p001_clean_with_token(self):
        assert lint_source(_P_CLEAN, path=LIB) == []

    def test_p001_non_rule_class_ignored(self):
        src = (
            "class Unrelated:\n"
            "    def step_batch(self, colors, topo):\n"
            "        return colors\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_p001_scoped_to_library(self):
        # test helpers subclass Rule freely; the contract binds src/ only
        assert lint_source(_P_VIOLATION, path="tests/helpers_fixture.py") == []

    def test_p001_suppressed_on_class_line(self):
        src = _P_VIOLATION.replace(
            "class CustomRule(Rule):",
            "class CustomRule(Rule):  # reprolint: disable=RPL-P001",
        )
        assert lint_source(src, path=LIB) == []


# ---------------------------------------------------------------------------
# backend-contract family
# ---------------------------------------------------------------------------


class TestBackendContract:
    def test_b001_missing_surface(self):
        src = (
            "from repro.engine.backends.base import KernelBackend\n\n\n"
            "class HalfBackend(KernelBackend):\n"
            "    def availability_error(self):\n"
            "        return None\n"
        )
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-B001"]
        assert "name" in findings[0].message
        assert "compile" in findings[0].message

    def test_b001_clean_full_surface(self):
        src = (
            "from repro.engine.backends.base import KernelBackend\n\n\n"
            "class FullBackend(KernelBackend):\n"
            '    name = "full"\n\n'
            "    def compile(self, rule, topo, max_batch):\n"
            "        return lambda colors: colors\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_b001_inherited_surface_counts(self):
        src = (
            "from repro.engine.backends.base import KernelBackend\n\n\n"
            "class BaseImpl(KernelBackend):\n"
            '    name = "base"\n\n'
            "    def compile(self, rule, topo, max_batch):\n"
            "        return lambda colors: colors\n\n\n"
            "class Derived(BaseImpl):\n"
            '    name = "derived"\n'
        )
        assert lint_source(src, path=LIB) == []

    def test_b002_unmasked_gather(self):
        src = (
            "def gather(colors, topo):\n"
            "    return colors[topo.neighbors]\n"
        )
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-B002"]
        assert findings[0].line == 2

    def test_b002_derived_name_tracked(self):
        src = (
            "import numpy as np\n\n\n"
            "def gather(colors, topo):\n"
            "    nb = topo.neighbors\n"
            "    flat = nb.ravel()\n"
            "    return np.take(colors, flat)\n"
        )
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-B002"]
        assert findings[0].line == 7

    def test_b002_mask_guard_clears(self):
        src = (
            "import numpy as np\n\n\n"
            "def gather(colors, topo):\n"
            "    nb = topo.neighbors\n"
            "    mask = nb >= 0\n"
            "    safe = np.where(mask, nb, 0)\n"
            "    return np.where(mask, colors[safe], -1)\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_b002_degrees_slicing_clears(self):
        src = (
            "def gather(colors, topo, v):\n"
            "    return [colors[w] for w in topo.neighbors[v, : topo.degrees[v]]]\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_b002_is_regular_gate_clears(self):
        src = (
            "def gather(colors, topo):\n"
            "    assert topo.is_regular\n"
            "    return colors[:, topo.neighbors]\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_b002_scoped_to_library(self):
        src = (
            "def gather(colors, topo):\n"
            "    return colors[topo.neighbors]\n"
        )
        assert lint_source(src, path="benchmarks/bench_fixture.py") == []

    def test_b002_suppressed(self):
        src = (
            "def gather(colors, topo):\n"
            "    # regular torus: table carries no -1 padding by construction\n"
            "    return colors[topo.neighbors]  # reprolint: disable=RPL-B002\n"
        )
        assert lint_source(src, path=LIB) == []


# ---------------------------------------------------------------------------
# typing family
# ---------------------------------------------------------------------------


class TestTypingGate:
    def test_t001_unannotated_def(self):
        src = "def f(x):\n    return x\n"
        findings = lint_source(src, path="src/repro/engine/_fixture.py")
        assert rules_of(findings) == ["RPL-T001"]
        assert "x" in findings[0].message
        assert "return type" in findings[0].message

    def test_t001_incomplete_def(self):
        src = "def f(x: int):\n    return x\n"
        findings = lint_source(src, path="src/repro/io/_fixture.py")
        assert rules_of(findings) == ["RPL-T001"]
        assert "return type" in findings[0].message

    def test_t001_init_return_optional(self):
        src = (
            "class C:\n"
            "    def __init__(self, x: int):\n"
            "        self.x = x\n"
        )
        assert lint_source(src, path="src/repro/topology/_fixture.py") == []

    def test_t001_clean_annotated(self):
        src = "def f(x: int) -> int:\n    return x\n"
        assert lint_source(src, path="src/repro/engine/_fixture.py") == []

    def test_t001_non_strict_package_unchecked(self):
        src = "def f(x):\n    return x\n"
        assert lint_source(src, path="src/repro/viz/_fixture.py") == []

    def test_t001_rules_and_experiments_are_strict(self):
        src = "def f(x):\n    return x\n"
        for pkg in ("rules", "experiments"):
            findings = lint_source(src, path=f"src/repro/{pkg}/_fixture.py")
            assert rules_of(findings) == ["RPL-T001"]

    def test_t001_suppressed(self):
        src = "def f(x):  # reprolint: disable=RPL-T001\n    return x\n"
        assert lint_source(src, path="src/repro/engine/_fixture.py") == []


# ---------------------------------------------------------------------------
# observability family
# ---------------------------------------------------------------------------


class TestObservability:
    def test_o001_obs_value_in_digest(self):
        src = (
            "import hashlib\n"
            "from repro import obs\n"
            "h = hashlib.blake2b(obs.active_session().path)\n"
        )
        findings = lint_source(src, path=LIB)
        assert rules_of(findings) == ["RPL-O001"]
        assert findings[0].line == 3
        assert "obs.active_session" in findings[0].message

    def test_o001_obs_value_in_payload_sink(self):
        src = (
            "from repro import obs\n"
            "from repro.io.jsonl import canonical_json\n"
            "line = canonical_json({'events': obs.stable_fields({})})\n"
        )
        assert rules_of(lint_source(src, path=LIB)) == ["RPL-O001"]

    def test_o001_obs_value_in_cache_key(self):
        src = (
            "from repro import obs\n"
            "from repro.engine.plans import stepper_cache_key\n"
            "key = stepper_cache_key('stencil', obs.count, None, 64)\n"
        )
        assert rules_of(lint_source(src, path=LIB)) == ["RPL-O001"]

    def test_o001_relative_obs_import(self):
        src = (
            "import hashlib\n"
            "from .. import obs\n"
            "digest = hashlib.sha256(obs.token)\n"
        )
        assert rules_of(
            lint_source(src, path="src/repro/io/_fixture.py")
        ) == ["RPL-O001"]

    def test_o001_clean_side_channel_use(self):
        src = (
            "from repro import obs\n"
            "from repro.io.jsonl import canonical_json\n"
            "def f(row: dict) -> str:\n"
            "    obs.count('witnessdb.append')\n"
            "    return canonical_json(row)\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_o001_no_obs_import_unchecked(self):
        src = (
            "import hashlib\n"
            "obs = object()\n"
            "h = hashlib.blake2b(b'x')\n"
        )
        assert lint_source(src, path=LIB) == []

    def test_o001_suppressed(self):
        src = (
            "import hashlib\n"
            "from repro import obs\n"
            "h = hashlib.blake2b(obs.token)  # reprolint: disable=RPL-O001\n"
        )
        assert lint_source(src, path=LIB) == []


# ---------------------------------------------------------------------------
# docs family (needs a real repo tree on disk)
# ---------------------------------------------------------------------------


def _mini_repo(tmp_path: Path, readme: str) -> Path:
    """A miniature repo exposing the real package + a custom README."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    (tmp_path / "src").mkdir()
    # reuse the real package so build_parser imports: symlink src/repro
    (tmp_path / "src" / "repro").symlink_to(ROOT / "src" / "repro")
    (tmp_path / "README.md").write_text(readme)
    return tmp_path


#: README fragment naming every real CLI flag (from the live parser), so
#: C001 stays quiet while C002/C003 fixtures run against the same root
def _all_flags_blurb() -> str:
    from repro.cli import build_parser

    from tools.reprolint.docs import collect_cli_flags

    return " ".join(f"`{flag}`" for flag in collect_cli_flags(build_parser()))


class TestDocsDrift:
    def test_c001_missing_flag_reported(self, tmp_path):
        root = _mini_repo(tmp_path, "# x\n\nno flags documented here\n")
        findings, _ = lint_project(root, ["src"], select=["docs"])
        c001 = [f for f in findings if f.rule == "RPL-C001"]
        assert c001, "expected missing-flag findings"
        assert all(f.path == "src/repro/cli.py" for f in c001)
        assert any("--backend" in f.message for f in c001)

    def test_c002_dangling_module_ref(self, tmp_path):
        readme = f"# x\n\nsee `repro.engine.nonexistent_thing`\n\n{_all_flags_blurb()}\n"
        root = _mini_repo(tmp_path, readme)
        findings, _ = lint_project(root, ["src"], select=["docs"])
        c002 = [f for f in findings if f.rule == "RPL-C002"]
        assert len(c002) == 1
        assert c002[0].path == "README.md"
        assert c002[0].line == 3
        assert "repro.engine.nonexistent_thing" in c002[0].message

    def test_c002_real_refs_resolve(self, tmp_path):
        readme = (
            "# x\n\n`repro.engine.run_batch` and `repro.io.witnessdb` and"
            f" `repro.topology`\n\n{_all_flags_blurb()}\n"
        )
        root = _mini_repo(tmp_path, readme)
        findings, _ = lint_project(root, ["src"], select=["docs"])
        assert [f for f in findings if f.rule == "RPL-C002"] == []

    def test_c003_stale_invocation(self, tmp_path):
        readme = (
            "# x\n\n```bash\nrepro-dynamo census --no-such-flag\n```\n\n"
            f"{_all_flags_blurb()}\n"
        )
        root = _mini_repo(tmp_path, readme)
        findings, _ = lint_project(root, ["src"], select=["docs"])
        c003 = [f for f in findings if f.rule == "RPL-C003"]
        assert len(c003) == 1
        assert c003[0].line == 4
        assert "--no-such-flag" in c003[0].message

    def test_c004_retired_module_reference(self, tmp_path):
        readme = (
            "# x\n\nuse `repro.core.batch.run_batch_smp` here\n\n"
            f"{_all_flags_blurb()}\n"
        )
        root = _mini_repo(tmp_path, readme)
        findings, _ = lint_project(root, ["src"], select=["docs"])
        c004 = [f for f in findings if f.rule == "RPL-C004"]
        assert len(c004) == 1
        assert c004[0].line == 3
        assert "repro.core.batch" in c004[0].message
        # a retired reference must not double-report as a dangling ref
        assert [f for f in findings if f.rule == "RPL-C002"] == []

    def test_c003_valid_invocation_clean(self, tmp_path):
        readme = (
            "# x\n\n```bash\nrepro-dynamo census --sizes 3 4 \\\n"
            "  --trials 100 | head\n```\n\n"
            f"{_all_flags_blurb()}\n"
        )
        root = _mini_repo(tmp_path, readme)
        findings, _ = lint_project(root, ["src"], select=["docs"])
        assert [f for f in findings if f.rule == "RPL-C003"] == []


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_and_summary_on_clean_tree(self, capsys):
        rc = reprolint_main(["--root", str(ROOT), "src"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "reprolint: clean" in captured.err

    def test_exit_nonzero_with_findings(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro"
        bad.mkdir(parents=True)
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (bad / "mod.py").write_text("import random\n")
        rc = reprolint_main(
            ["--root", str(tmp_path), "src", "--select", "determinism"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "src/repro/mod.py:1:1 RPL-D001" in captured.out

    def test_json_report(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro"
        bad.mkdir(parents=True)
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (bad / "mod.py").write_text("import random\n")
        rc = reprolint_main(
            ["--root", str(tmp_path), "src", "--select", "determinism", "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert report["files_scanned"] == 1
        assert [f["rule"] for f in report["findings"]] == ["RPL-D001"]
        assert report["findings"][0]["path"] == "src/repro/mod.py"

    def test_list_rules(self, capsys):
        rc = reprolint_main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule in (
            "RPL-D001", "RPL-D005", "RPL-P001", "RPL-B001", "RPL-B002",
            "RPL-C001", "RPL-C003", "RPL-C004", "RPL-T001", "RPL-O001",
        ):
            assert rule in out

    def test_unknown_family_rejected(self, capsys):
        rc = reprolint_main(["--select", "nonsense"])
        assert rc == 2

    def test_syntax_error_reported_not_crashing(self, tmp_path, capsys):
        bad = tmp_path / "src"
        bad.mkdir()
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (bad / "broken.py").write_text("def f(:\n")
        rc = reprolint_main(["--root", str(tmp_path), "src"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "RPL-E001" in captured.out


# ---------------------------------------------------------------------------
# acceptance: the shipped tree is clean, exactly as CI invokes it
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_shipped_tree_is_reprolint_clean(self):
        findings, scanned = lint_project(ROOT, ["src", "tests", "benchmarks"])
        assert findings == [], "\n".join(f.render() for f in findings)
        assert scanned > 100

    @pytest.mark.slow
    def test_module_entry_point_subprocess(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "src", "tests", "benchmarks"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "reprolint: clean" in proc.stderr
