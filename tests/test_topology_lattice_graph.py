"""OpenMesh and GraphTopology coverage: irregular-table mechanics."""

import networkx as nx
import numpy as np
import pytest

from repro.rules import GeneralizedPluralityRule
from repro.topology import GraphTopology, OpenMesh


# ----------------------------------------------------------------------
# OpenMesh
# ----------------------------------------------------------------------
def test_open_mesh_degrees():
    om = OpenMesh(3, 4)
    om.validate()
    grid = om.to_grid(om.degrees)
    assert grid[0, 0] == 2 and grid[0, 3] == 2  # corners
    assert grid[0, 1] == 3 and grid[1, 0] == 3  # edges
    assert grid[1, 1] == 4 and grid[1, 2] == 4  # interior
    assert om.num_edges() == 3 * 3 + 4 * 2  # m(n-1) + (m-1)n = 9 + 8


def test_open_mesh_no_wraparound():
    om = OpenMesh(4, 4)
    corner = om.vertex_index(0, 0)
    neighbors = set(om.neighbor_list(corner).tolist())
    assert neighbors == {om.vertex_index(1, 0), om.vertex_index(0, 1)}


def test_open_mesh_coordinate_strictness():
    om = OpenMesh(3, 3)
    with pytest.raises(ValueError):
        om.vertex_index(-1, 0)
    with pytest.raises(ValueError):
        om.vertex_index(0, 3)
    with pytest.raises(ValueError):
        om.vertex_coords(9)
    with pytest.raises(ValueError):
        OpenMesh(1, 5)


def test_open_mesh_plurality_dynamics(rng):
    om = OpenMesh(4, 4)
    colors = rng.integers(0, 3, size=16).astype(np.int32)
    rule = GeneralizedPluralityRule(num_colors=3)
    assert np.array_equal(
        rule.step(colors, om), rule.step_reference(colors, om)
    )


def test_open_mesh_grid_helpers():
    om = OpenMesh(2, 3)
    v = np.arange(6)
    assert om.to_grid(v).shape == (2, 3)
    with pytest.raises(ValueError):
        om.to_grid(np.arange(5))


# ----------------------------------------------------------------------
# GraphTopology
# ----------------------------------------------------------------------
def test_graph_topology_from_edge_list():
    topo = GraphTopology([(0, 1), (1, 2), (2, 0)])
    topo.validate()
    assert topo.num_vertices == 3
    assert topo.num_edges() == 3
    assert topo.is_regular


def test_graph_topology_isolated_vertices():
    topo = GraphTopology([(0, 1)], num_vertices=4)
    assert topo.num_vertices == 4
    assert topo.degrees[2] == 0 and topo.degrees[3] == 0
    assert topo.neighbor_list(3).size == 0


def test_graph_topology_num_vertices_validation():
    with pytest.raises(ValueError):
        GraphTopology([(0, 5)], num_vertices=3)
    with pytest.raises(ValueError):
        GraphTopology([(2, 2)])  # self-loop


def test_graph_topology_duplicate_edges_collapsed():
    topo = GraphTopology([(0, 1), (0, 1), (1, 0)])
    assert topo.num_edges() == 1
    assert topo.degrees[0] == 1


def test_graph_topology_nonint_labels_relabeled():
    g = nx.Graph([("alpha", "beta"), ("beta", "gamma")])
    topo = GraphTopology(g)
    assert topo.num_vertices == 3
    assert set(topo.labels) == {"alpha", "beta", "gamma"}
    assert sorted(topo.labels.values()) == [0, 1, 2]


def test_graph_topology_integer_nodes_keep_ids():
    g = nx.path_graph(4)
    topo = GraphTopology(g)
    assert topo.labels == {0: 0, 1: 1, 2: 2, 3: 3}
    assert set(topo.neighbor_list(1).tolist()) == {0, 2}


def test_graph_topology_padding_layout():
    topo = GraphTopology(nx.star_graph(3))
    assert topo.max_degree == 3
    # leaves have two padding slots of -1
    assert list(topo.neighbors[1]) == [0, -1, -1]
