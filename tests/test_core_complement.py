"""Complement-coloring search tests."""

import numpy as np
import pytest

from repro.core import (
    find_dynamo_complement,
    is_monotone_dynamo,
    minimum_palette_complement,
    theorem2_mesh_dynamo,
)
from repro.topology import ToroidalMesh, TorusCordalis


def test_rejects_bad_inputs():
    topo = ToroidalMesh(3, 3)
    with pytest.raises(ValueError):
        find_dynamo_complement(topo, [99], 0, [1, 2])
    with pytest.raises(ValueError):
        find_dynamo_complement(topo, [0], 0, [0, 1])  # palette contains k


def test_finds_triangle_split_for_3x3_diagonal():
    topo = ToroidalMesh(3, 3)
    diag = [topo.vertex_index(i, i) for i in range(3)]
    colors = find_dynamo_complement(topo, diag, 0, [1, 2])
    assert colors is not None
    assert is_monotone_dynamo(topo, colors, 0)
    assert np.array_equal(np.flatnonzero(colors == 0), np.asarray(diag))


def test_minimum_palette_is_two_for_3x3_diagonal():
    topo = ToroidalMesh(3, 3)
    diag = [topo.vertex_index(i, i) for i in range(3)]
    p, colors = minimum_palette_complement(topo, diag, 0)
    assert p == 2
    assert is_monotone_dynamo(topo, colors, 0)


def test_one_color_complement_impossible_for_diagonal():
    # a monochromatic complement ties every staircase vertex: no dynamo
    topo = ToroidalMesh(3, 3)
    diag = [topo.vertex_index(i, i) for i in range(3)]
    assert find_dynamo_complement(topo, diag, 0, [1]) is None


def test_impossible_seed_returns_none():
    # a single vertex can never grow (no second k anywhere)
    topo = ToroidalMesh(3, 3)
    assert find_dynamo_complement(topo, [4], 0, [1, 2, 3]) is None


def test_theorem2_seed_four_total_colors_achievable_on_4x4():
    """Reproduction finding: a non-stripe complement achieves the paper's
    |C| >= 4 on the 4x4 mesh where stripes need 5."""
    con = theorem2_mesh_dynamo(4, 4)
    assert con.num_colors == 5  # the stripe construction's palette
    p, colors = minimum_palette_complement(
        con.topo, np.flatnonzero(con.seed), con.k
    )
    assert p == 3  # 3 non-k colors -> |C| = 4
    assert is_monotone_dynamo(con.topo, colors, con.k)


def test_non_monotone_search_is_weaker_or_equal():
    topo = ToroidalMesh(3, 3)
    diag = [topo.vertex_index(i, i) for i in range(3)]
    relaxed = minimum_palette_complement(topo, diag, 0, require_monotone=False)
    strict = minimum_palette_complement(topo, diag, 0, require_monotone=True)
    assert relaxed is not None and strict is not None
    assert relaxed[0] <= strict[0]


def test_works_on_cordalis():
    topo = TorusCordalis(4, 4)
    diag = [topo.vertex_index(i, i) for i in range(4)]
    found = minimum_palette_complement(topo, diag, 0, max_nodes=500_000)
    assert found is not None
    p, colors = found
    assert is_monotone_dynamo(topo, colors, 0)
    assert p <= 3


def test_budget_exhaustion_returns_none():
    topo = ToroidalMesh(4, 4)
    diag = [topo.vertex_index(i, i) for i in range(4)]
    # a 1-node budget cannot possibly finish
    assert (
        find_dynamo_complement(topo, diag, 0, [1, 2], max_nodes=1) is None
    )
