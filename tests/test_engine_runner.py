"""Synchronous engine tests: convergence, cycles, tracking, freezing."""

import numpy as np
import pytest

from repro.engine import default_round_cap, run_synchronous
from repro.rules import BLACK, WHITE, ReverseSimpleMajority, SMPRule
from repro.topology import ToroidalMesh

from helpers import TORUS_KINDS, random_coloring


def test_monochromatic_input_converges_at_round_zero(torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 4)
    colors = np.full(16, 2, dtype=np.int32)
    res = run_synchronous(topo, colors, SMPRule())
    assert res.converged
    assert res.fixed_point_round == 0
    assert res.rounds == 0
    assert res.monochromatic and res.monochromatic_color == 2
    assert res.cycle_length == 1


def test_rounds_equal_last_change_round():
    from repro.core import theorem2_mesh_dynamo

    con = theorem2_mesh_dynamo(6, 6)
    res = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k)
    assert res.converged
    assert res.fixed_point_round == int(res.last_change.max())
    assert res.rounds == res.fixed_point_round


def test_is_dynamo_run():
    from repro.core import theorem4_cordalis_dynamo

    con = theorem4_cordalis_dynamo(4, 4)
    res = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k)
    assert res.is_dynamo_run(con.k)
    assert not res.is_dynamo_run(con.k + 1)


def test_max_rounds_cap_respected():
    from repro.core import theorem4_cordalis_dynamo

    con = theorem4_cordalis_dynamo(8, 8)  # needs 24 rounds
    res = run_synchronous(con.topo, con.colors, SMPRule(), max_rounds=3)
    assert not res.converged
    assert res.rounds == 3
    assert res.fixed_point_round is None


def test_negative_max_rounds_rejected():
    topo = ToroidalMesh(3, 3)
    with pytest.raises(ValueError):
        run_synchronous(topo, np.zeros(9, dtype=np.int32), SMPRule(), max_rounds=-1)


def test_wrong_length_coloring_rejected():
    topo = ToroidalMesh(3, 3)
    with pytest.raises(ValueError):
        run_synchronous(topo, np.zeros(8, dtype=np.int32), SMPRule())


def test_negative_colors_rejected():
    topo = ToroidalMesh(3, 3)
    with pytest.raises(ValueError):
        run_synchronous(topo, np.full(9, -1, dtype=np.int32), SMPRule())


def test_trajectory_recording():
    from repro.core import theorem2_mesh_dynamo

    con = theorem2_mesh_dynamo(5, 5)
    res = run_synchronous(
        con.topo, con.colors, SMPRule(), target_color=con.k, record=True
    )
    assert len(res.trajectory) == res.rounds + 1
    assert np.array_equal(res.trajectory[0], con.colors)
    assert np.array_equal(res.trajectory[-1], res.final)
    # each recorded state is one step of the previous
    rule = SMPRule()
    for a, b in zip(res.trajectory, res.trajectory[1:]):
        assert np.array_equal(rule.step(a, con.topo), b)


def test_first_and_last_change_tracking():
    from repro.core import theorem2_mesh_dynamo

    con = theorem2_mesh_dynamo(5, 5)
    res = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k)
    # monotone dynamo: every vertex changes at most once
    assert np.array_equal(res.first_change, res.last_change)
    assert np.all(res.last_change[con.seed] == 0)
    assert np.all(res.last_change[~con.seed] > 0)


def test_monotone_flag_true_on_construction():
    from repro.core import theorem6_serpentinus_dynamo

    con = theorem6_serpentinus_dynamo(5, 4)
    res = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k)
    assert res.monotone is True


def test_monotone_flag_false_when_seed_abandons():
    # a lone k vertex surrounded by a hostile triple recolors away
    topo = ToroidalMesh(3, 3)
    colors = np.zeros(9, dtype=np.int32)
    k = 5
    colors[topo.vertex_index(1, 1)] = k
    colors[topo.vertex_index(0, 1)] = 7
    colors[topo.vertex_index(2, 1)] = 7
    colors[topo.vertex_index(1, 0)] = 7
    res = run_synchronous(topo, colors, SMPRule(), target_color=k)
    assert res.monotone is False


def test_monotone_none_without_target():
    topo = ToroidalMesh(3, 3)
    res = run_synchronous(topo, np.zeros(9, dtype=np.int32), SMPRule())
    assert res.monotone is None and res.target_color is None


def test_frozen_vertices_never_change():
    from repro.core import theorem2_mesh_dynamo

    con = theorem2_mesh_dynamo(5, 5)
    frozen = [int(np.flatnonzero(~con.seed)[0])]
    res = run_synchronous(
        con.topo, con.colors, SMPRule(), target_color=con.k, frozen=frozen
    )
    assert res.final[frozen[0]] == con.colors[frozen[0]]


def test_frozen_out_of_range_rejected():
    topo = ToroidalMesh(3, 3)
    with pytest.raises(ValueError):
        run_synchronous(
            topo, np.zeros(9, dtype=np.int32), SMPRule(), frozen=[99]
        )


def test_cycle_detection_reports_period():
    """Under Prefer-Black a 2-row black band on a 4-row torus blinks:
    rows with two black vertical neighbors go black, the old band's rows
    see two white -> the band translates/oscillates; whatever the exact
    orbit, the engine must detect a cycle rather than loop to the cap."""
    topo = ToroidalMesh(4, 4)
    grid = np.full((4, 4), WHITE, dtype=np.int32)
    grid[0, :] = BLACK
    grid[2, :] = BLACK
    res = run_synchronous(
        topo, grid.reshape(-1), ReverseSimpleMajority("prefer-black")
    )
    assert res.converged or (res.cycle_length is not None and res.cycle_length >= 2)
    assert res.rounds < default_round_cap(topo)


def test_cycle_detection_can_be_disabled():
    topo = ToroidalMesh(4, 4)
    grid = np.full((4, 4), WHITE, dtype=np.int32)
    grid[0, :] = BLACK
    grid[2, :] = BLACK
    res = run_synchronous(
        topo,
        grid.reshape(-1),
        ReverseSimpleMajority("prefer-black"),
        detect_cycles=False,
        max_rounds=50,
    )
    if not res.converged:
        assert res.cycle_length is None
        assert res.rounds == 50


def test_default_round_cap_scale(torus_kind):
    topo = TORUS_KINDS[torus_kind](5, 5)
    assert default_round_cap(topo) == 4 * 25 + 64


def test_deterministic(rng, torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 5)
    colors = random_coloring(topo, 4, rng)
    r1 = run_synchronous(topo, colors, SMPRule())
    r2 = run_synchronous(topo, colors, SMPRule())
    assert np.array_equal(r1.final, r2.final)
    assert r1.rounds == r2.rounds


def test_summary_strings():
    from repro.core import theorem2_mesh_dynamo

    con = theorem2_mesh_dynamo(5, 5)
    res = run_synchronous(con.topo, con.colors, SMPRule(), target_color=con.k)
    s = res.summary()
    assert "monochromatic" in s and "fixed point" in s and "monotone=True" in s
