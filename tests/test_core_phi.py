"""phi color-collapse tests (Propositions 1 and 2)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import non_k_core_mask, phi_collapse, white_blocks_mask
from repro.rules import BLACK, WHITE
from repro.topology import ToroidalMesh

from helpers import TORUS_KINDS, random_coloring


def test_phi_maps_target_to_black():
    colors = np.array([0, 1, 2, 3, 1], dtype=np.int32)
    out = phi_collapse(colors, k=1)
    assert np.array_equal(out, [WHITE, BLACK, WHITE, WHITE, BLACK])
    assert out.dtype == np.int32


def test_white_blocks_requires_bicoloring():
    topo = ToroidalMesh(3, 3)
    import pytest

    with pytest.raises(ValueError):
        white_blocks_mask(topo, np.full(9, 7, dtype=np.int32))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), k=st.integers(0, 3))
def test_non_k_core_equals_white_block_core_under_phi(seed, k):
    """Proposition 1's engine: under phi, the non-k-blocks of a
    multi-coloring are exactly the simple white blocks of the collapsed
    bi-coloring (both are >= 3-inside cores of the same vertex set)."""
    rng = np.random.default_rng(seed)
    topo = ToroidalMesh(5, 6)
    colors = rng.integers(0, 4, size=topo.num_vertices).astype(np.int32)
    multi = non_k_core_mask(topo, colors, k)
    bi = white_blocks_mask(topo, phi_collapse(colors, k))
    assert np.array_equal(multi, bi)


def test_collapse_preserves_seed_mask(rng, torus_kind):
    topo = TORUS_KINDS[torus_kind](4, 5)
    colors = random_coloring(topo, 5, rng)
    k = 2
    bi = phi_collapse(colors, k)
    assert np.array_equal(bi == BLACK, colors == k)
    assert set(np.unique(bi)).issubset({WHITE, BLACK})


def test_collapsed_dynamo_behaves_differently_per_rule():
    """Remark 1's point, dynamically: collapsing a working multi-color
    dynamo destroys it.  Under the SMP rule the collapsed bi-coloring is
    no dynamo — worse, the black seed *erodes*: the partial black row is
    eaten right-to-left (each end vertex faces a 3-white neighborhood)
    until only the black column block survives, a non-monotone run.
    Under Prefer-Black the same configuration never settles: it enters
    the classic period-2 majority oscillation.  The multi-color problem
    is genuinely different from both bi-color rules."""
    from repro.core import theorem2_mesh_dynamo
    from repro.engine import run_synchronous
    from repro.rules import ReverseSimpleMajority, SMPRule

    con = theorem2_mesh_dynamo(6, 6)
    bi = phi_collapse(con.colors, con.k)
    smp = run_synchronous(con.topo, bi, SMPRule(), target_color=BLACK)
    assert smp.converged and not smp.monochromatic
    assert smp.monotone is False  # the seed shrank
    final_black = (smp.final == BLACK).sum()
    assert 0 < final_black < (bi == BLACK).sum()
    pb = run_synchronous(con.topo, bi, ReverseSimpleMajority("prefer-black"))
    assert (pb.converged and pb.monochromatic_color == BLACK) or (
        pb.cycle_length == 2
    )
