"""Lemma 3 machine checks: exact minimal k-block sizes vs the bounds."""

import numpy as np
import pytest

from repro.core.bounds import lemma3_block_min_size
from repro.structures.spanning import is_k_block_set, min_block_size, render_block
from repro.topology import ToroidalMesh


def test_is_k_block_set_basic():
    topo = ToroidalMesh(5, 5)
    square = np.asarray(
        [topo.vertex_index(i, j) for i in (1, 2) for j in (1, 2)]
    )
    assert is_k_block_set(topo, square)
    path = np.asarray([topo.vertex_index(1, j) for j in range(3)])
    assert not is_k_block_set(topo, path)
    two_squares = np.asarray(
        [topo.vertex_index(i, j) for i in (0, 1) for j in (0, 1)]
        + [topo.vertex_index(i, j) for i in (3, 4) for j in (3, 4)]
    )
    assert not is_k_block_set(topo, two_squares)  # disconnected


@pytest.mark.parametrize(
    "m_block,n_block",
    [(1, 1), (2, 2), (2, 3), (3, 3), (3, 4)],
)
def test_lemma3_interior_blocks(m_block, n_block):
    """Exact minima for interior boxes on a 6x6 mesh vs the lemma bound."""
    topo = ToroidalMesh(6, 6)
    found = min_block_size(topo, m_block, n_block)
    bound = lemma3_block_min_size(6, 6, m_block, n_block)
    if found is None:
        # 1x1 (and 1xk, kx1 interior) admit no block at all: a single
        # row-segment's endpoints always lack inside-degree 2
        assert m_block == 1 or n_block == 1
        return
    size, ids = found
    assert size >= bound
    assert is_k_block_set(topo, ids)


def test_lemma3_interior_bound_is_tight_2x2():
    topo = ToroidalMesh(6, 6)
    size, ids = min_block_size(topo, 2, 2)
    assert size == lemma3_block_min_size(6, 6, 2, 2) == 4


def test_lemma3_interior_bound_not_tight_3x3():
    """Reproduction finding: Lemma 3's interior bound m_B + n_B = 6 is
    *not achieved* for a 3x3 box — the exhaustive minimum is 7 (a thick
    staircase).  The lemma (a lower bound) still holds."""
    topo = ToroidalMesh(6, 6)
    size, ids = min_block_size(topo, 3, 3)
    assert size == 7 > lemma3_block_min_size(6, 6, 3, 3) == 6
    rows = render_block(topo, ids)
    assert sum(row.count("#") for row in rows) == 7


def test_lemma3_interior_bound_tight_2x3():
    topo = ToroidalMesh(6, 6)
    size, _ = min_block_size(topo, 2, 3)
    assert size >= lemma3_block_min_size(6, 6, 2, 3) == 5


@pytest.mark.parametrize("n", [4, 5])
def test_lemma3_spanning_column(n):
    """A full column (extents (m, 1)) is a block of exactly m = m_B + n_B - 1."""
    topo = ToroidalMesh(n, n)
    found = min_block_size(topo, n, 1)
    assert found is not None
    size, ids = found
    assert size == n == lemma3_block_min_size(n, n, n, 1)


def test_spanning_band_bound():
    """Spanning two-column band on a 4x4: bound says >= 4 + 2 - 1 = 5."""
    topo = ToroidalMesh(4, 4)
    found = min_block_size(topo, 4, 2, max_cells=20)
    assert found is not None
    size, _ = found
    assert size >= lemma3_block_min_size(4, 4, 4, 2)


def test_min_block_size_validations():
    topo = ToroidalMesh(4, 4)
    with pytest.raises(ValueError):
        min_block_size(topo, 5, 1)
    with pytest.raises(ValueError):
        min_block_size(topo, 4, 4, max_cells=10)
