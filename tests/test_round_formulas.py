"""Round-count laws: paper formulas vs measured, pinned over sweeps.

These tests encode the reproduction's headline timing results:

* the full-cross mesh seed follows ``ceil((m-1)/2) + ceil((n-1)/2) - 1``
  exactly (Theorem 7's formula (1) is the m = n special case; for
  rectangular tori the paper's max-based formula overestimates);
* the Theorem-2 minimum seed costs at most one extra round (exactly one
  when m, n are both odd, none when both even);
* the cordalis/serpentinus row seeds follow Theorem 8 exactly for odd m;
  for even m the paper's formula (3) undercounts — measured is
  ``(m/2 - 1) * n``;
* the serpentinus column seed (no paper formula) follows
  ``floor(m(n-2)/2) - floor((m-2)/2)``.
"""

import pytest

from repro.core import (
    full_cross_mesh_dynamo,
    theorem2_mesh_dynamo,
    theorem4_cordalis_dynamo,
    theorem6_serpentinus_dynamo,
    theorem7_mesh_rounds,
    theorem8_row_rounds,
    verify_construction,
)
from repro.core.bounds import (
    empirical_cross_rounds,
    empirical_mesh_rounds,
    empirical_row_rounds,
    empirical_serpentinus_column_rounds,
)


def _measured(con):
    rep = verify_construction(con, check_conditions=False)
    assert rep.is_monotone_dynamo
    return rep.rounds


@pytest.mark.parametrize("m", range(3, 10))
@pytest.mark.parametrize("n", range(3, 10))
def test_cross_seed_follows_empirical_law(m, n):
    assert _measured(full_cross_mesh_dynamo(m, n)) == empirical_cross_rounds(m, n)


@pytest.mark.parametrize("s", range(3, 12))
def test_paper_theorem7_exact_on_squares(s):
    assert _measured(full_cross_mesh_dynamo(s, s)) == theorem7_mesh_rounds(s, s)


@pytest.mark.parametrize("m,n", [(3, 8), (4, 9), (10, 5), (12, 3)])
def test_paper_theorem7_overestimates_rectangles(m, n):
    measured = _measured(full_cross_mesh_dynamo(m, n))
    assert measured == empirical_cross_rounds(m, n) < theorem7_mesh_rounds(m, n)


@pytest.mark.parametrize("m", range(3, 9))
@pytest.mark.parametrize("n", range(3, 9))
def test_theorem2_seed_costs_at_most_one_extra_round(m, n):
    measured = _measured(theorem2_mesh_dynamo(m, n))
    cross = empirical_cross_rounds(m, n)
    assert measured in (cross, cross + 1)
    expected = empirical_mesh_rounds(m, n)
    if expected is not None:
        assert measured == expected


@pytest.mark.parametrize("m", range(3, 9))
@pytest.mark.parametrize("n", range(3, 8))
def test_cordalis_rounds_follow_empirical_law(m, n):
    assert _measured(theorem4_cordalis_dynamo(m, n)) == empirical_row_rounds(m, n)


@pytest.mark.parametrize("m", [3, 5, 7, 9])
@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_paper_theorem8_exact_for_odd_m(m, n):
    assert _measured(theorem4_cordalis_dynamo(m, n)) == theorem8_row_rounds(m, n)


@pytest.mark.parametrize("m,n", [(4, 5), (6, 6), (8, 4)])
def test_paper_theorem8_undercounts_even_m(m, n):
    measured = _measured(theorem4_cordalis_dynamo(m, n))
    assert measured == empirical_row_rounds(m, n) > theorem8_row_rounds(m, n)


@pytest.mark.parametrize("m,n", [(5, 5), (7, 4), (8, 6), (9, 9), (6, 3)])
def test_serpentinus_row_seed_matches_cordalis_law(m, n):
    assert _measured(theorem6_serpentinus_dynamo(m, n)) == empirical_row_rounds(m, n)


@pytest.mark.parametrize("m,n", [(3, 5), (4, 7), (5, 8), (6, 9), (7, 10)])
def test_serpentinus_column_seed_follows_fitted_law(m, n):
    assert _measured(
        theorem6_serpentinus_dynamo(m, n)
    ) == empirical_serpentinus_column_rounds(m, n)


def test_figure_values_pin_the_formulas():
    # Figure 5's matrix peaks at 3; Figure 6's at 8 — both reproduced
    assert empirical_cross_rounds(5, 5) == theorem7_mesh_rounds(5, 5) == 3
    assert empirical_row_rounds(5, 5) == theorem8_row_rounds(5, 5) == 8
