"""Ablation experiment tests."""

import numpy as np
import pytest

from repro.experiments import (
    complement_ablation,
    seed_shape_ablation,
    tie_rule_ablation,
)


def test_tie_rule_ablation_smp_wins():
    arms = {r.arm: r for r in tie_rule_ablation("mesh", 6, 6)}
    assert arms["smp"].monochromatic and arms["smp"].monotone
    # strong majority can't move the thin construction at all
    assert arms["strong-majority"].rounds == 0
    assert not arms["strong-majority"].monochromatic
    # the phi-collapsed configuration misbehaves under both bi-color rules
    assert not arms["prefer-black(phi)"].monotone
    assert not arms["prefer-current(phi)"].monochromatic


@pytest.mark.parametrize("kind", ["mesh", "cordalis", "serpentinus"])
def test_tie_rule_ablation_all_kinds(kind):
    arms = {r.arm: r for r in tie_rule_ablation(kind, 6, 6)}
    assert arms["smp"].k_fraction == 1.0
    assert arms["smp"].k_fraction >= max(
        a.k_fraction for name, a in arms.items() if name != "smp"
    )


def test_seed_shape_ablation_theorem_and_diagonal_win():
    out = seed_shape_ablation(6, 6, rng=np.random.default_rng(5))
    assert out["theorem"].k_fraction == 1.0
    assert out["diagonal"].k_fraction == 1.0
    # same budget, naive placement: strictly worse on average
    assert out["scatter"].k_fraction < 1.0
    assert out["block"].k_fraction < 1.0


def test_complement_ablation_probabilities():
    out = complement_ablation("cordalis", 5, 6, trials=30)
    assert out["theorem"] == 1.0
    assert out["monochromatic"] == 0.0
    assert 0.0 <= out["random"] < 1.0


def test_complement_ablation_random_rarely_works():
    """Random complements rarely assemble the protective structure: the
    crafted complement is the load-bearing ingredient.  (The rate grows
    with palette size — random rainbows get likelier — so the 4-color
    6x6 construction is the cleanest demonstration.)"""
    out = complement_ablation("mesh", 6, 6, trials=40)
    assert out["random"] <= 0.2
    out_small_palette = complement_ablation("cordalis", 6, 6, trials=40)
    assert out_small_palette["random"] <= 0.2
